// classify demonstrates the affine classification machinery of Section 2.2:
// the Rademacher-Walsh spectrum, the class representative, and the AND-free
// transform that rebuilds a function from its representative.
//
//	go run ./examples/classify
package main

import (
	"fmt"

	"repro/internal/mcdb"
	"repro/internal/spectral"
	"repro/internal/tt"
)

func main() {
	// The paper's Example 2.3: MAJ(x1,x2,x3) ≡ x1 ∧ x2 under the five
	// affine operations.
	maj := tt.New(0xe8, 3)
	and := tt.New(0x88, 3) // x1∧x2 viewed as a 3-variable function

	fmt.Printf("MAJ  = %s  spectrum %v\n", maj, spectral.Spectrum(maj))
	fmt.Printf("AND  = %s  spectrum %v\n", and, spectral.Spectrum(and))

	rm := spectral.Classify(maj, 0)
	ra := spectral.Classify(and, 0)
	fmt.Printf("\nrepresentative of [MAJ] = %s\n", rm.Repr)
	fmt.Printf("representative of [AND] = %s\n", ra.Repr)
	if rm.Repr == ra.Repr {
		fmt.Println("=> same affine class, as Example 2.3 shows by hand")
	}

	fmt.Printf("\ntransform back to MAJ: inputs %v (compl %v), output mask %b, compl %v\n",
		rm.Tr.InputMask[:rm.Tr.N], rm.Tr.InputCompl[:rm.Tr.N], rm.Tr.OutputMask, rm.Tr.OutputCompl)
	if rm.Tr.Apply(rm.Repr) == maj {
		fmt.Println("applying the transform to the representative rebuilds MAJ exactly")
	}

	// Class statistics for all small functions (Section 2.2 quotes
	// 1, 2, 3, 8 classes for n = 1..4).
	fmt.Println()
	db := mcdb.New(mcdb.Options{})
	for n := 1; n <= 4; n++ {
		reprs := map[tt.T]bool{}
		for bits := uint64(0); bits < 1<<(1<<uint(n)); bits++ {
			reprs[db.Classify(tt.New(bits, n)).Repr] = true
		}
		fmt.Printf("n=%d: %d affine equivalence classes\n", n, len(reprs))
	}

	// And the multiplicative complexity of each 4-variable class.
	fmt.Println("\n4-variable class representatives and their MC-optimal circuits:")
	seen := map[tt.T]bool{}
	for bits := uint64(0); bits < 65536; bits++ {
		res := db.Classify(tt.New(bits, 4))
		if seen[res.Repr] {
			continue
		}
		seen[res.Repr] = true
		e := db.EntryFor(res.Repr)
		fmt.Printf("  repr %-4s: MC = %d (proven minimal: %v)\n", res.Repr, e.MC(), e.Exact)
	}
}
