// sha256mc reproduces the paper's flagship crypto result: minimizing the
// AND count of a SHA-256 compression circuit, the quantity that drives the
// cost of MPC protocols and post-quantum signatures built on it (Table 2
// reports a 66 % reduction after convergence).
//
// The full convergence run takes a few minutes; pass a round budget to see
// the effect quickly, and -workers to spread classification over cores:
//
//	go run ./examples/sha256mc -rounds 1 -workers 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/mcc"
)

func main() {
	rounds := flag.Int("rounds", 2, "rewriting rounds (0 = until convergence)")
	workers := flag.Int("workers", 0, "classification workers (0 = GOMAXPROCS); same result for any value")
	flag.Parse()

	fmt.Println("building SHA-256 single-block compression circuit…")
	net := bench.SHA256Block()
	c := net.CountGates()
	fmt.Printf("initial: %d AND, %d XOR, AND-depth %d (verified against crypto/sha256 by the test suite)\n",
		c.And, c.Xor, c.AndDepth)

	start := time.Now()
	res := mcc.Optimize(context.Background(), net,
		mcc.WithMaxRounds(*rounds),
		mcc.WithWorkers(*workers),
		mcc.WithLogger(func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}),
	)
	if res.Err != nil {
		fmt.Fprintln(os.Stderr, "optimization failed:", res.Err)
		os.Exit(1)
	}
	for i, r := range res.Rounds {
		fmt.Printf("round %d: AND %6d -> %6d  (%d rewrites, %v)\n",
			i+1, r.Before.And, r.After.And, r.Replacements, r.Duration.Round(time.Millisecond))
	}
	after := res.Final()
	fmt.Printf("\nfinal: %d AND, %d XOR  (%.0f%% fewer ANDs, %v total)\n",
		after.And, after.Xor, 100*(1-float64(after.And)/float64(c.And)), time.Since(start).Round(time.Millisecond))
	s := res.DB.Stats()
	fmt.Printf("classification cache: %.0f%% hit rate (%d hits / %d misses)\n",
		100*s.ClassHitRate(), s.ClassCacheHits, s.Classified)

	// What the reduction buys in protocol terms (free-XOR cost models).
	fmt.Println("\nprotocol cost (XORs free):")
	fmt.Printf("  garbled circuit, half-gates:   %8d -> %8d ciphertexts\n", 2*c.And, 2*after.And)
	fmt.Printf("  GMW / TinyOT AND triples:      %8d -> %8d\n", c.And, after.And)
	fmt.Printf("  ZKBoo/Picnic signature ∝ ANDs: %8d -> %8d\n", c.And, after.And)
}
