// Quickstart: the paper's running example (Figures 1 and 2, Example 3.1),
// written against the public mcc package.
//
// A full adder built the textbook way uses three AND gates. Its carry
// output is the majority function, which is affine-equivalent to a single
// AND — so cut rewriting reduces the whole adder to multiplicative
// complexity 1, exactly as the paper derives by hand.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"

	"repro/mcc"
)

func main() {
	// Fig. 1(a): sum = (a⊕b)⊕cin, cout = (a∧b) ∨ (cin∧(a⊕b)).
	net := mcc.NewNetwork()
	a, b, cin := net.AddPI("a"), net.AddPI("b"), net.AddPI("cin")
	ab := net.Xor(a, b)
	net.AddPO(net.Xor(ab, cin), "sum")
	net.AddPO(net.Or(net.And(a, b), net.And(cin, ab)), "cout")

	before := net.CountGates()
	fmt.Printf("full adder, textbook structure: %d AND, %d XOR\n", before.And, before.Xor)

	// Algorithm 1: cut rewriting until convergence, with the end-of-round
	// equivalence miter on for good measure.
	result := mcc.Optimize(context.Background(), net, mcc.WithVerify(true))
	if result.Err != nil {
		fmt.Println("optimization failed:", result.Err)
		os.Exit(1)
	}
	after := result.Final()
	fmt.Printf("\nafter cut rewriting: %d AND, %d XOR (%d rounds)\n",
		after.And, after.Xor, len(result.Rounds))
	fmt.Printf("the full adder has multiplicative complexity at most %d\n", after.And)

	// The classification behind the rewrite (the paper's Example 2.3):
	// MAJ(a,b,cin), truth table 0xe8, shares an affine class with AND. The
	// optimizer's database has classified it during the run.
	s := result.DB.Stats()
	fmt.Printf("\ndatabase: %d classifications, %d cache hits, %d circuit entries\n",
		s.Classified, s.ClassCacheHits, result.DB.NumEntries())

	// Verify all eight input combinations still behave like a full adder.
	for m := 0; m < 8; m++ {
		in := []bool{m&1 == 1, m&2 == 2, m&4 == 4}
		out := result.Network.EvalBools(in)
		ones := 0
		for _, v := range in {
			if v {
				ones++
			}
		}
		if out[0] != (ones%2 == 1) || out[1] != (ones >= 2) {
			fmt.Println("verification FAILED")
			os.Exit(1)
		}
	}
	fmt.Println("exhaustive verification passed")

	// Fig. 2(c): the optimized structure, as Graphviz.
	fmt.Println("\noptimized XAG (DOT):")
	result.Network.WriteDOT(os.Stdout)
}
