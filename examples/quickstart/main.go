// Quickstart: the paper's running example (Figures 1 and 2, Example 3.1).
//
// A full adder built the textbook way uses three AND gates. Its carry
// output is the majority function, which is affine-equivalent to a single
// AND — so cut rewriting reduces the whole adder to multiplicative
// complexity 1, exactly as the paper derives by hand.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/mcdb"
	"repro/internal/tt"
	"repro/internal/xag"
)

func main() {
	// Fig. 1(a): sum = (a⊕b)⊕cin, cout = (a∧b) ∨ (cin∧(a⊕b)).
	net := xag.New()
	a, b, cin := net.AddPI("a"), net.AddPI("b"), net.AddPI("cin")
	ab := net.Xor(a, b)
	net.AddPO(net.Xor(ab, cin), "sum")
	net.AddPO(net.Or(net.And(a, b), net.And(cin, ab)), "cout")

	before := net.CountGates()
	fmt.Printf("full adder, textbook structure: %d AND, %d XOR\n", before.And, before.Xor)

	// The classification step of the paper's Example 2.3: MAJ(a,b,cin)
	// (truth table 0xe8) is affine-equivalent to a single AND gate.
	db := mcdb.New(mcdb.Options{})
	maj := tt.New(0xe8, 3)
	entry, res := db.Lookup(maj)
	fmt.Printf("\nMAJ = %s classifies to representative %s with MC %d\n",
		maj, res.Repr, entry.MC())

	// Algorithm 1: cut rewriting until convergence.
	result := core.MinimizeMC(net, core.Options{DB: db})
	after := result.Network.CountGates()
	fmt.Printf("\nafter cut rewriting: %d AND, %d XOR (%d rounds)\n",
		after.And, after.Xor, len(result.Rounds))
	fmt.Printf("the full adder has multiplicative complexity at most %d\n", after.And)

	// Verify all eight input combinations still behave like a full adder.
	for m := 0; m < 8; m++ {
		in := []bool{m&1 == 1, m&2 == 2, m&4 == 4}
		out := result.Network.EvalBools(in)
		ones := 0
		for _, v := range in {
			if v {
				ones++
			}
		}
		if out[0] != (ones%2 == 1) || out[1] != (ones >= 2) {
			fmt.Println("verification FAILED")
			os.Exit(1)
		}
	}
	fmt.Println("exhaustive verification passed")

	// Fig. 2(c): the optimized structure, as Graphviz.
	fmt.Println("\noptimized XAG (DOT):")
	result.Network.WriteDOT(os.Stdout)
}
