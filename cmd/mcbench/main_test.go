package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/tt"
)

func runMcbench(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitUsage(t *testing.T) {
	cases := [][]string{
		{"-table", "7"},      // unknown table
		{"-no-such-flag"},    // flag parse error
		{"-table", "2", "x"}, // positional arguments
		{"-k", "9"},          // cut size out of range
		{"-cuts", "-5"},      // cut limit out of range
		{"-workers", "-1"},   // negative worker count
		{"-cost", "area"},    // unknown cost model
	}
	for _, args := range cases {
		if code, _, _ := runMcbench(args...); code != exitUsage {
			t.Errorf("args %v: exit %d, want %d", args, code, exitUsage)
		}
	}
}

func TestTableTwoSingleBenchmark(t *testing.T) {
	code, stdout, stderr := runMcbench("-table", "2", "-only", "adder-32")
	if code != exitOK {
		t.Fatalf("exit %d, want 0 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stdout, "Table 2") || !strings.Contains(stdout, "adder-32") {
		t.Fatalf("table output missing expected rows:\n%s", stdout)
	}
}

func TestDepthCostTableRun(t *testing.T) {
	code, stdout, stderr := runMcbench("-table", "2", "-only", "adder-32", "-cost", "depth")
	if code != exitOK {
		t.Fatalf("exit %d, want 0 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stdout, "depth") {
		t.Fatalf("depth-cost table lacks depth columns:\n%s", stdout)
	}
}

func TestExitVerifyOnCorruptedOptimizer(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	// Complement every cut function: the optimizer produces an inequivalent
	// network, the table harness's equivalence check trips, and the command
	// must exit 4 instead of printing a wrong table.
	faultinject.Set(faultinject.PointCutFunction, func(p any) {
		f := p.(*tt.T)
		*f = f.Not()
	})
	code, stdout, stderr := runMcbench("-table", "2", "-only", "adder-32")
	if code != exitVerify {
		t.Fatalf("exit %d, want %d (stderr: %s)", code, exitVerify, stderr)
	}
	if strings.Contains(stdout, "adder-32") {
		t.Fatalf("failed run still printed a table:\n%s", stdout)
	}
}

// TestProfilingFlags: profile destinations are honored around a quick run.
func TestProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	tr := filepath.Join(dir, "trace.out")
	code, _, stderr := runMcbench("-table", "2", "-only", "adder-64",
		"-cpuprofile", cpu, "-trace", tr)
	if code != exitOK {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, p := range []string{cpu, tr} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s: empty profile", p)
		}
	}
}

func TestProfilingBadPath(t *testing.T) {
	code, _, _ := runMcbench("-table", "2", "-only", "adder-64",
		"-memprofile", filepath.Join(t.TempDir(), "no", "dir", "mem.out"))
	if code != exitUsage {
		t.Fatalf("exit %d, want %d", code, exitUsage)
	}
}
