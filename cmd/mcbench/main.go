// Command mcbench regenerates the experimental tables of the paper:
//
//	mcbench -table 1        # EPFL combinational suite (Table 1)
//	mcbench -table 2        # MPC/FHE crypto suite (Table 2)
//	mcbench -table all
//	mcbench -quick          # cap rounds, skip the largest circuits
//	mcbench -ablation       # cut-size / cut-limit sweeps (Section 4.1)
//	mcbench -only sha-256
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mcdb"
	"repro/internal/tables"
)

func main() {
	var (
		table    = flag.String("table", "all", "which table to regenerate: 1, 2, all, or ext (beyond-paper benchmarks)")
		quick    = flag.Bool("quick", false, "cap convergence at 3 rounds and skip the largest circuits")
		only     = flag.String("only", "", "comma-separated benchmark names to run")
		cutSize  = flag.Int("k", 6, "cut size K")
		cutLimit = flag.Int("cuts", 12, "priority cuts per node")
		ablation = flag.Bool("ablation", false, "run the cut-size and cut-limit ablations instead")
	)
	flag.Parse()

	if *ablation {
		runAblation()
		return
	}

	maxRounds := 0
	if *quick {
		maxRounds = 3
	}
	filter := func(list []bench.Benchmark) []bench.Benchmark {
		if *only != "" {
			keep := map[string]bool{}
			for _, n := range strings.Split(*only, ",") {
				keep[strings.TrimSpace(n)] = true
			}
			var out []bench.Benchmark
			for _, b := range list {
				if keep[b.Name] {
					out = append(out, b)
				}
			}
			return out
		}
		if *quick {
			var out []bench.Benchmark
			for _, b := range list {
				if b.Name == "sha-256" || b.Name == "sha-1" || b.Name == "md5" {
					continue
				}
				out = append(out, b)
			}
			return out
		}
		return list
	}

	db := mcdb.New(mcdb.Options{})
	coreOpts := core.Options{CutSize: *cutSize, CutLimit: *cutLimit, DB: db}

	if *table == "1" || *table == "all" {
		rows := tables.Run(filter(bench.EPFL()), tables.Options{
			Baseline: true, MaxRounds: maxRounds, Core: coreOpts,
		})
		tables.SortByGroup(rows)
		fmt.Println(tables.Format("Table 1: EPFL benchmarks (initial = generic size optimization)", rows))
	}
	if *table == "2" || *table == "all" {
		rows := tables.Run(filter(bench.MPC()), tables.Options{
			MaxRounds: maxRounds, Core: coreOpts,
		})
		tables.SortByGroup(rows)
		fmt.Println(tables.Format("Table 2: MPC and FHE benchmarks", rows))
	}
	if *table == "ext" {
		rows := tables.Run(filter(bench.Extended()), tables.Options{
			MaxRounds: maxRounds, Core: coreOpts,
		})
		tables.SortByGroup(rows)
		fmt.Println(tables.Format("Extension benchmarks (beyond the paper)", rows))
	}
}

// runAblation sweeps the design parameters called out in Section 4.1 of the
// paper (cut size 6, cut limit 12) on a medium benchmark.
func runAblation() {
	b, ok := bench.ByName("multiplier")
	if !ok {
		fmt.Fprintln(os.Stderr, "mcbench: multiplier benchmark missing")
		os.Exit(1)
	}
	fmt.Println("Ablation: cut size K (cut limit 12, multiplier benchmark)")
	for _, k := range []int{3, 4, 5, 6} {
		runOneConfig(b, core.Options{CutSize: k, CutLimit: 12})
	}
	fmt.Println("\nAblation: cut limit (K = 6, multiplier benchmark)")
	for _, limit := range []int{4, 8, 12, 16, 24} {
		runOneConfig(b, core.Options{CutSize: 6, CutLimit: limit})
	}
	fmt.Println("\nAblation: zero-gain acceptance (K = 6, limit 12)")
	for _, zg := range []bool{false, true} {
		opts := core.Options{CutSize: 6, CutLimit: 12, AllowZeroGain: zg}
		runOneConfig(b, opts)
	}
}

func runOneConfig(b bench.Benchmark, opts core.Options) {
	start := time.Now()
	row := tables.RunOne(b, tables.Options{Core: opts, MaxRounds: 8}, mcdb.New(mcdb.Options{}))
	fmt.Printf("  K=%d limit=%2d zero-gain=%-5v  AND %6d -> %6d (%4.0f%%)  rounds=%d  %v\n",
		opts.CutSize, opts.CutLimit, opts.AllowZeroGain,
		row.InitAnd, row.ConvAnd, 100*row.ConvImpr(), row.Rounds,
		time.Since(start).Round(time.Millisecond))
}
