// Command mcbench regenerates the experimental tables of the paper:
//
//	mcbench -table 1        # EPFL combinational suite (Table 1)
//	mcbench -table 2        # MPC/FHE crypto suite (Table 2)
//	mcbench -table all
//	mcbench -quick          # cap rounds, skip the largest circuits
//	mcbench -ablation       # cut-size / cut-limit sweeps (Section 4.1)
//	mcbench -only sha-256
//	mcbench -quick -cpuprofile cpu.out -trace trace.out
//
// The -cpuprofile, -memprofile, and -trace flags capture standard Go
// profiles of the whole run; engine samples carry per-stage pprof labels
// (stage = enumerate | classify | commit). -incremental=false times the
// non-reusing baseline.
//
// Exit codes: 0 on success, 2 on usage errors, 4 when an optimized
// benchmark fails its equivalence check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/mcdb"
	"repro/internal/profiling"
	"repro/internal/tables"
)

// Distinct exit codes so scripted callers can tell failure classes apart.
const (
	exitOK     = 0
	exitUsage  = 2
	exitVerify = 4
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("mcbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		table     = fs.String("table", "all", "which table to regenerate: 1, 2, all, or ext (beyond-paper benchmarks)")
		quick     = fs.Bool("quick", false, "cap convergence at 3 rounds and skip the largest circuits")
		only      = fs.String("only", "", "comma-separated benchmark names to run")
		cutSize   = fs.Int("k", 6, "cut size K")
		cutLimit  = fs.Int("cuts", 12, "priority cuts per node")
		costName  = fs.String("cost", "mc", "cost model: mc (AND count), size (AND+XOR), or depth (multiplicative depth)")
		workers   = fs.Int("workers", 0, "worker goroutines for the parallel stages (0 = GOMAXPROCS); results are identical for any value")
		seqCommit = fs.Bool("seq-commit", false, "force the sequential reference commit pass (identical result; for bisecting determinism bugs)")
		incr      = fs.Bool("incremental", true, "reuse cut lists and classifications across rounds (identical result either way)")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile here (filter stages with -tagfocus stage=...)")
		memProf   = fs.String("memprofile", "", "write a heap allocation profile here")
		traceOut  = fs.String("trace", "", "write a runtime execution trace here")
		ablation  = fs.Bool("ablation", false, "run the cut-size and cut-limit ablations instead")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	prof := profiling.Config{CPUProfile: *cpuProf, MemProfile: *memProf, Trace: *traceOut}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "mcbench: unexpected arguments: %v\n", fs.Args())
		return exitUsage
	}
	switch *table {
	case "1", "2", "all", "ext":
	default:
		fmt.Fprintf(stderr, "mcbench: unknown -table %q (want 1, 2, all, or ext)\n", *table)
		return exitUsage
	}
	if *cutSize < 2 || *cutSize > 6 {
		fmt.Fprintf(stderr, "mcbench: -k must be in 2..6, got %d\n", *cutSize)
		return exitUsage
	}
	if *cutLimit < 1 {
		fmt.Fprintf(stderr, "mcbench: -cuts must be at least 1, got %d\n", *cutLimit)
		return exitUsage
	}
	if *workers < 0 {
		fmt.Fprintf(stderr, "mcbench: -workers must not be negative, got %d\n", *workers)
		return exitUsage
	}
	model, err := cost.FromName(*costName)
	if err != nil {
		fmt.Fprintf(stderr, "mcbench: -cost: %v\n", err)
		return exitUsage
	}

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(stderr, "mcbench:", err)
		return exitUsage
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "mcbench:", err)
			if code == exitOK {
				code = exitUsage
			}
		}
	}()

	if *ablation {
		return runAblation(stdout, stderr)
	}

	maxRounds := 0
	if *quick {
		maxRounds = 3
	}
	filter := func(list []bench.Benchmark) []bench.Benchmark {
		if *only != "" {
			keep := map[string]bool{}
			for _, n := range strings.Split(*only, ",") {
				keep[strings.TrimSpace(n)] = true
			}
			var out []bench.Benchmark
			for _, b := range list {
				if keep[b.Name] {
					out = append(out, b)
				}
			}
			return out
		}
		if *quick {
			var out []bench.Benchmark
			for _, b := range list {
				if b.Name == "sha-256" || b.Name == "sha-1" || b.Name == "md5" {
					continue
				}
				out = append(out, b)
			}
			return out
		}
		return list
	}

	db := mcdb.New(mcdb.Options{})
	coreOpts := core.Options{CutSize: *cutSize, CutLimit: *cutLimit, Cost: model, Workers: *workers, DB: db, NoIncremental: !*incr, SequentialCommit: *seqCommit}

	emit := func(title string, list []bench.Benchmark, opts tables.Options) int {
		rows, err := tables.Run(list, opts)
		if err != nil {
			fmt.Fprintf(stderr, "mcbench: %v\n", err)
			return exitVerify
		}
		tables.SortByGroup(rows)
		fmt.Fprintln(stdout, tables.Format(title, rows))
		return exitOK
	}

	if *table == "1" || *table == "all" {
		if c := emit("Table 1: EPFL benchmarks (initial = generic size optimization)",
			filter(bench.EPFL()), tables.Options{Baseline: true, MaxRounds: maxRounds, Core: coreOpts}); c != exitOK {
			return c
		}
	}
	if *table == "2" || *table == "all" {
		if c := emit("Table 2: MPC and FHE benchmarks",
			filter(bench.MPC()), tables.Options{MaxRounds: maxRounds, Core: coreOpts}); c != exitOK {
			return c
		}
	}
	if *table == "ext" {
		if c := emit("Extension benchmarks (beyond the paper)",
			filter(bench.Extended()), tables.Options{MaxRounds: maxRounds, Core: coreOpts}); c != exitOK {
			return c
		}
	}
	return exitOK
}

// runAblation sweeps the design parameters called out in Section 4.1 of the
// paper (cut size 6, cut limit 12) on a medium benchmark.
func runAblation(stdout, stderr io.Writer) int {
	b, ok := bench.ByName("multiplier")
	if !ok {
		fmt.Fprintln(stderr, "mcbench: multiplier benchmark missing")
		return exitUsage
	}
	fmt.Fprintln(stdout, "Ablation: cut size K (cut limit 12, multiplier benchmark)")
	for _, k := range []int{3, 4, 5, 6} {
		if c := runOneConfig(stdout, stderr, b, core.Options{CutSize: k, CutLimit: 12}); c != exitOK {
			return c
		}
	}
	fmt.Fprintln(stdout, "\nAblation: cut limit (K = 6, multiplier benchmark)")
	for _, limit := range []int{4, 8, 12, 16, 24} {
		if c := runOneConfig(stdout, stderr, b, core.Options{CutSize: 6, CutLimit: limit}); c != exitOK {
			return c
		}
	}
	fmt.Fprintln(stdout, "\nAblation: zero-gain acceptance (K = 6, limit 12)")
	for _, zg := range []bool{false, true} {
		opts := core.Options{CutSize: 6, CutLimit: 12, AllowZeroGain: zg}
		if c := runOneConfig(stdout, stderr, b, opts); c != exitOK {
			return c
		}
	}
	return exitOK
}

func runOneConfig(stdout, stderr io.Writer, b bench.Benchmark, opts core.Options) int {
	start := time.Now()
	row, err := tables.RunOne(b, tables.Options{Core: opts, MaxRounds: 8}, mcdb.New(mcdb.Options{}))
	if err != nil {
		fmt.Fprintf(stderr, "mcbench: %v\n", err)
		return exitVerify
	}
	fmt.Fprintf(stdout, "  K=%d limit=%2d zero-gain=%-5v  AND %6d -> %6d (%4.0f%%)  rounds=%d  %v\n",
		opts.CutSize, opts.CutLimit, opts.AllowZeroGain,
		row.InitAnd, row.ConvAnd, 100*row.ConvImpr(), row.Rounds,
		time.Since(start).Round(time.Millisecond))
	return exitOK
}
