// Command mcserved is the resident optimization service: a long-running HTTP
// daemon that minimizes the multiplicative complexity of logic networks
// (Testa et al., DAC 2019) against one process-wide warm synthesis database,
// so concurrent callers share the classification cache a batch mcopt run
// would rebuild from scratch every time.
//
//	mcserved -addr :8383
//	mcserved -addr :8383 -workers 4 -queue 128 -warmup adder-64
//	mcserved -addr :8383 -data-dir /var/lib/mcserved
//	mcserved -addr :8383 -db mc.db
//
// Optimize a circuit over HTTP (raw Bristol in, raw Bristol out):
//
//	curl -s --data-binary @adder64.txt -H 'Accept: text/plain' \
//	    'http://localhost:8383/v1/optimize?cost=mc&rounds=2'
//
// or with a JSON envelope (Bristol or a JSON gate list plus options):
//
//	curl -s -H 'Content-Type: application/json' \
//	    -d '{"bristol": "...", "options": {"cost": "depth", "verify": true}}' \
//	    http://localhost:8383/v1/optimize
//
// POST /v1/optimize/batch runs an array of envelopes with per-item status;
// POST /v1/jobs submits the same envelope asynchronously (202 + id, poll
// GET /v1/jobs/{id}, cancel with DELETE). Identical requests are answered
// from a content-addressed result cache (sized by -cache-entries and
// -cache-bytes; -cache-entries -1 disables) — see API.md for the full HTTP
// contract.
//
// GET /metrics exposes the shared registry in Prometheus text format;
// GET /healthz and /readyz are liveness and readiness probes. On SIGTERM or
// SIGINT the daemon stops admitting work, finishes in-flight requests, and
// exits (bounded by -drain-timeout).
//
// With -data-dir the synthesis database is durable: every newly synthesized
// entry is fsynced to a write-ahead journal, a background snapshotter
// checkpoints on -snapshot-interval (jittered), and restart recovers the
// database from snapshot + journal, quarantining anything corrupt instead of
// refusing to start. The result cache persists through the same machinery
// (rescache.snap next to the store snapshot) and is reloaded at startup.
// POST /admin/snapshot forces a checkpoint, POST /admin/reload merges a
// snapshot file from another replica, and GET /admin/dbinfo reports
// durability state.
//
// With -refine-budget a background SAT refiner periodically revisits stored
// circuits (jittered -refine-interval cadence), replacing them with smaller
// ones and stamping entries proven AND-minimal; POST /admin/refine triggers
// one pass on demand regardless of the flag.
//
// Exit codes: 0 on clean shutdown, 1 on I/O or serve errors, 2 on usage
// errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/faultinject"
	"repro/internal/mcdb"
	"repro/internal/metrics"
	"repro/internal/server"
)

const (
	exitOK    = 0
	exitIO    = 1
	exitUsage = 2
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8383", "listen address")
		workers      = fs.Int("workers", 0, "concurrent optimizations (0 = GOMAXPROCS)")
		queue        = fs.Int("queue", 64, "queued requests beyond the running ones before 429")
		maxBody      = fs.Int64("max-body", 32<<20, "request body size limit in bytes")
		deadline     = fs.Duration("deadline", 60*time.Second, "default per-request optimization deadline")
		maxDeadline  = fs.Duration("max-deadline", 5*time.Minute, "upper bound on the per-request deadline")
		reqWorkers   = fs.Int("request-workers", 4, "cap on the per-request engine worker count")
		dbPath       = fs.String("db", "", "load a persisted synthesis database at startup (read-only; see -data-dir for durability)")
		dataDir      = fs.String("data-dir", "", "directory for the durable snapshot + journal store; empty keeps the database in memory only")
		snapInterval = fs.Duration("snapshot-interval", 5*time.Minute, "background snapshot cadence when -data-dir is set (jittered; 0 disables)")
		cacheEntries = fs.Int("cache-entries", 4096, "result cache capacity in entries (-1 disables the cache)")
		cacheBytes   = fs.Int64("cache-bytes", 256<<20, "result cache capacity in bytes")
		warmup       = fs.String("warmup", "adder-32", "built-in benchmark optimized once at startup to warm the database; empty disables")
		refineBudget = fs.Int64("refine-budget", 0, "SAT conflict budget per query for the background refiner (0 disables)")
		refineEvery  = fs.Duration("refine-interval", 10*time.Minute, "background refinement cadence when -refine-budget is set (jittered)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
		verbose      = fs.Bool("v", false, "log server events")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "mcserved: unexpected arguments: %v\n", fs.Args())
		return exitUsage
	}
	switch {
	case *workers < 0:
		fmt.Fprintf(stderr, "mcserved: -workers must not be negative, got %d\n", *workers)
		return exitUsage
	case *queue < 1:
		fmt.Fprintf(stderr, "mcserved: -queue must be at least 1, got %d\n", *queue)
		return exitUsage
	case *maxBody < 1:
		fmt.Fprintf(stderr, "mcserved: -max-body must be positive, got %d\n", *maxBody)
		return exitUsage
	case *deadline <= 0 || *maxDeadline <= 0 || *drainTimeout <= 0:
		fmt.Fprintln(stderr, "mcserved: -deadline, -max-deadline, and -drain-timeout must be positive")
		return exitUsage
	case *deadline > *maxDeadline:
		fmt.Fprintf(stderr, "mcserved: -deadline %v exceeds -max-deadline %v\n", *deadline, *maxDeadline)
		return exitUsage
	case *reqWorkers < 1:
		fmt.Fprintf(stderr, "mcserved: -request-workers must be at least 1, got %d\n", *reqWorkers)
		return exitUsage
	case *snapInterval < 0:
		fmt.Fprintf(stderr, "mcserved: -snapshot-interval must not be negative, got %v\n", *snapInterval)
		return exitUsage
	case *cacheBytes < 1:
		fmt.Fprintf(stderr, "mcserved: -cache-bytes must be positive, got %d\n", *cacheBytes)
		return exitUsage
	case *refineBudget < 0:
		fmt.Fprintf(stderr, "mcserved: -refine-budget must not be negative, got %d\n", *refineBudget)
		return exitUsage
	case *refineEvery <= 0:
		fmt.Fprintf(stderr, "mcserved: -refine-interval must be positive, got %v\n", *refineEvery)
		return exitUsage
	}
	// Crash points armed from the environment (FAULTINJECT_CRASH) drive the
	// CI crash-recovery smoke test; in production the variable is unset and
	// this is a no-op.
	if point, err := faultinject.InstallCrashFromEnv(); err != nil {
		fmt.Fprintln(stderr, "mcserved:", err)
		return exitUsage
	} else if point != "" {
		fmt.Fprintf(stdout, "mcserved: crash point armed: %s\n", point)
	}
	var warmupBench bench.Benchmark
	if *warmup != "" {
		b, ok := bench.ByName(*warmup)
		if !ok {
			fmt.Fprintf(stderr, "mcserved: unknown -warmup benchmark %q\n", *warmup)
			return exitUsage
		}
		warmupBench = b
	}

	db := mcdb.New(mcdb.Options{})
	if *dbPath != "" {
		// Seed file (snapshot or legacy gob), loaded before the store opens so
		// its entries are not re-journaled; the next snapshot covers them.
		rep, err := db.LoadFile(*dbPath)
		if err != nil {
			fmt.Fprintf(stderr, "mcserved: loading %s: %v\n", *dbPath, err)
			return exitIO
		}
		fmt.Fprintf(stdout, "mcserved: loaded %d database entries from %s (%d quarantined)\n", rep.Loaded, *dbPath, rep.Quarantined)
	}
	var store *mcdb.Store
	if *dataDir != "" {
		st, rec, err := mcdb.OpenStore(*dataDir, db)
		if err != nil {
			fmt.Fprintf(stderr, "mcserved: opening store %s: %v\n", *dataDir, err)
			return exitIO
		}
		store = st
		defer store.Close()
		fmt.Fprintf(stdout, "mcserved: recovered %d entries from %s (snapshot %d + journal %d, %d quarantined)\n",
			rec.Snapshot.Loaded+rec.Journal.Loaded, *dataDir,
			rec.Snapshot.Loaded, rec.Journal.Loaded,
			rec.Snapshot.Quarantined+rec.Journal.Quarantined)
		if !rec.Clean() {
			for _, p := range rec.Snapshot.Problems {
				fmt.Fprintln(stderr, "mcserved: recovery:", p)
			}
			for _, p := range rec.Journal.Problems {
				fmt.Fprintln(stderr, "mcserved: recovery:", p)
			}
		}
	}

	cfg := server.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		MaxPayloadBytes:   *maxBody,
		DefaultDeadline:   *deadline,
		MaxDeadline:       *maxDeadline,
		MaxRequestWorkers: *reqWorkers,
		Registry:          metrics.NewRegistry(),
		DB:                db,
		Store:             store,
		CacheEntries:      *cacheEntries,
		CacheBytes:        *cacheBytes,
	}
	if *verbose {
		cfg.Logf = func(format string, a ...any) {
			fmt.Fprintf(stderr, format+"\n", a...)
		}
	}
	srv := server.New(cfg)
	if rep, err := srv.LoadCache(); err != nil {
		// A damaged cache snapshot is never fatal: the cache rebuilds from
		// traffic.
		fmt.Fprintf(stderr, "mcserved: result cache load: %v\n", err)
	} else if rep.Loaded > 0 || rep.Quarantined > 0 {
		fmt.Fprintf(stdout, "mcserved: recovered %d cached results (%d quarantined)\n", rep.Loaded, rep.Quarantined)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "mcserved:", err)
		return exitIO
	}
	if *warmup != "" {
		srv.SetReady(false)
		go func() {
			srv.Warmup(ctx, warmupBench.Build())
			// Persist what warm-up synthesized so the next start skips it even
			// if the process later dies without a clean drain.
			if store != nil && ctx.Err() == nil {
				if _, err := store.Snapshot(); err != nil {
					fmt.Fprintf(stderr, "mcserved: warmup snapshot: %v\n", err)
				}
			}
		}()
	}
	srv.StartSnapshotter(ctx, *snapInterval)
	srv.StartRefiner(ctx, *refineEvery, *refineBudget)
	fmt.Fprintf(stdout, "mcserved: listening on %s\n", ln.Addr())
	code := serve(ctx, srv, ln, *drainTimeout, stdout, stderr)
	if store != nil {
		// Final checkpoint: the journal already holds everything, but leaving
		// a fresh snapshot makes the next start O(snapshot) instead of
		// O(journal replay).
		if store.Info().JournalRecords > 0 {
			if _, err := store.Snapshot(); err != nil {
				fmt.Fprintf(stderr, "mcserved: final snapshot: %v\n", err)
				code = max(code, exitIO)
			}
		}
		// Persist the result cache too, so a restart serves its hot circuits
		// from the first request.
		if n, err := srv.SaveCache(); err != nil {
			fmt.Fprintf(stderr, "mcserved: final cache snapshot: %v\n", err)
			code = max(code, exitIO)
		} else if n > 0 {
			fmt.Fprintf(stdout, "mcserved: persisted %d cached results\n", n)
		}
	}
	return code
}

// serve runs the HTTP server on ln until ctx is canceled (SIGTERM/SIGINT in
// production, a test's cancel otherwise), then drains: admission stops, the
// listener closes, and in-flight requests get up to drainTimeout to finish.
func serve(ctx context.Context, srv *server.Server, ln net.Listener, drainTimeout time.Duration, stdout, stderr io.Writer) int {
	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		// Serve only returns on listener failure here; drain is the ctx path.
		fmt.Fprintln(stderr, "mcserved:", err)
		return exitIO
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "mcserved: shutdown requested, draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	srv.BeginDrain()
	code := exitOK
	// Shutdown stops the listener and waits for active handlers — the queued
	// and running optimizations — to complete.
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "mcserved: drain: %v\n", err)
		code = exitIO
	}
	<-errc // Serve has returned http.ErrServerClosed
	fmt.Fprintln(stdout, "mcserved: stopped")
	return code
}
