package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/metrics"
	"repro/internal/server"
)

// syncBuffer is a bytes.Buffer safe to read from the test goroutine while
// the daemon goroutine writes to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-frobnicate"}},
		{"positional args", []string{"extra"}},
		{"negative workers", []string{"-workers", "-1"}},
		{"zero queue", []string{"-queue", "0"}},
		{"zero max body", []string{"-max-body", "0"}},
		{"negative deadline", []string{"-deadline", "-1s"}},
		{"deadline above cap", []string{"-deadline", "10m", "-max-deadline", "5m"}},
		{"zero request workers", []string{"-request-workers", "0"}},
		{"unknown warmup benchmark", []string{"-warmup", "no-such-circuit"}},
		{"negative snapshot interval", []string{"-snapshot-interval", "-1s"}},
		{"zero cache bytes", []string{"-cache-bytes", "0"}},
		{"negative refine budget", []string{"-refine-budget", "-1"}},
		{"zero refine interval", []string{"-refine-interval", "0s"}},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(context.Background(), tc.args, &stdout, &stderr); code != exitUsage {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", tc.name, code, exitUsage, stderr.String())
		}
	}
}

func TestMissingDatabaseFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-db", "/nonexistent/mc.db", "-addr", "127.0.0.1:0"}, &stdout, &stderr)
	if code != exitIO {
		t.Fatalf("exit %d, want %d", code, exitIO)
	}
}

func TestListenFailure(t *testing.T) {
	// Occupy a port, then ask mcserved to bind it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-addr", ln.Addr().String(), "-warmup", ""}, &stdout, &stderr)
	if code != exitIO {
		t.Fatalf("exit %d, want %d (stderr: %s)", code, exitIO, stderr.String())
	}
}

// TestServeLifecycle drives the daemon the way main does — serve on a real
// listener, optimize over HTTP, then cancel the context like SIGTERM — and
// checks the full loop: readiness after warm-up, a correct optimization
// response, and a clean exit-0 drain.
func TestServeLifecycle(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{
		Workers:  2,
		Registry: metrics.NewRegistry(),
	})
	b, _ := bench.ByName("decoder")
	srv.SetReady(false)
	ctx, cancel := context.WithCancel(context.Background())
	go srv.Warmup(ctx, b.Build())

	var stdout, stderr syncBuffer
	exited := make(chan int, 1)
	go func() {
		exited <- serve(ctx, srv, ln, 10*time.Second, &stdout, &stderr)
	}()
	base := "http://" + ln.Addr().String()

	// Readiness flips once warm-up completes.
	waitFor(t, 30*time.Second, func() bool {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	}, "server never became ready")

	var circuit bytes.Buffer
	if err := b.Build().WriteBristol(&circuit); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", base+"/v1/optimize?rounds=2", strings.NewReader(circuit.String()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize: %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Mc-And-After") == "" {
		t.Error("optimize response missing X-MC-And-After")
	}
	if _, err := http.Get(base + "/metrics"); err != nil {
		t.Errorf("metrics scrape: %v", err)
	}

	// SIGTERM equivalent: cancel the context and expect a clean drain.
	cancel()
	select {
	case code := <-exited:
		if code != exitOK {
			t.Fatalf("serve exited %d, want %d (stderr: %s)", code, exitOK, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve never returned after cancellation")
	}
	for _, want := range []string{"shutdown requested", "stopped"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestRunStartupAndShutdown exercises run itself end to end with an
// ephemeral port and no warm-up.
func TestRunStartupAndShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var stdout, stderr syncBuffer
	exited := make(chan int, 1)
	go func() {
		exited <- run(ctx, []string{"-addr", "127.0.0.1:0", "-warmup", "", "-v"}, &stdout, &stderr)
	}()

	// The listen address is printed once the socket is bound.
	var base string
	waitFor(t, 30*time.Second, func() bool {
		out := stdout.String()
		i := strings.Index(out, "listening on ")
		if i < 0 {
			return false
		}
		addr := out[i+len("listening on "):]
		if j := strings.IndexByte(addr, '\n'); j < 0 {
			return false
		} else {
			base = "http://" + addr[:j]
		}
		return true
	}, "daemon never reported its listen address")

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	cancel()
	select {
	case code := <-exited:
		if code != exitOK {
			t.Fatalf("run exited %d, want %d (stderr: %s)", code, exitOK, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run never returned after cancellation")
	}
}

// startDaemon runs the daemon with args plus an ephemeral port and returns
// its base URL once the socket is bound.
func startDaemon(t *testing.T, ctx context.Context, args []string) (base string, stdout, stderr *syncBuffer, exited chan int) {
	t.Helper()
	stdout, stderr = &syncBuffer{}, &syncBuffer{}
	exited = make(chan int, 1)
	go func() {
		exited <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), stdout, stderr)
	}()
	waitFor(t, 30*time.Second, func() bool {
		out := stdout.String()
		i := strings.Index(out, "listening on ")
		if i < 0 {
			return false
		}
		addr := out[i+len("listening on "):]
		j := strings.IndexByte(addr, '\n')
		if j < 0 {
			return false
		}
		base = "http://" + addr[:j]
		return true
	}, "daemon never reported its listen address")
	return base, stdout, stderr, exited
}

// TestRunDataDirDurability runs the daemon with a durable store, optimizes
// once, shuts down, and restarts on the same directory: the second process
// must recover the first one's entries instead of starting cold.
func TestRunDataDirDurability(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	base, _, stderr, exited := startDaemon(t, ctx, []string{"-data-dir", dir, "-warmup", ""})

	b, _ := bench.ByName("decoder")
	var circuit bytes.Buffer
	if err := b.Build().WriteBristol(&circuit); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/optimize?rounds=1", "text/plain", strings.NewReader(circuit.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize: %d", resp.StatusCode)
	}

	cancel()
	select {
	case code := <-exited:
		if code != exitOK {
			t.Fatalf("first run exited %d (stderr: %s)", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("first run never exited")
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	_, stdout2, stderr2, exited2 := startDaemon(t, ctx2, []string{"-data-dir", dir, "-warmup", ""})
	out := stdout2.String()
	if !strings.Contains(out, "recovered") || strings.Contains(out, "recovered 0 entries") {
		t.Errorf("restart did not recover entries:\n%s", out)
	}
	cancel2()
	select {
	case code := <-exited2:
		if code != exitOK {
			t.Fatalf("second run exited %d (stderr: %s)", code, stderr2.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("second run never exited")
	}
}

// TestRunCacheRestartE2E proves the result cache survives a restart through
// the flag surface: optimize once, drain, restart on the same -data-dir, and
// the identical request is a byte-identical cache hit.
func TestRunCacheRestartE2E(t *testing.T) {
	dir := t.TempDir()
	b, _ := bench.ByName("decoder")
	var circuit bytes.Buffer
	if err := b.Build().WriteBristol(&circuit); err != nil {
		t.Fatal(err)
	}
	envelope := `{"bristol": ` + jsonString(circuit.String()) + `}`

	post := func(base string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(base+"/v1/optimize", "application/json", strings.NewReader(envelope))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("optimize: %d: %s", resp.StatusCode, body)
		}
		return resp, body
	}

	ctx, cancel := context.WithCancel(context.Background())
	base, stdout, stderr, exited := startDaemon(t, ctx, []string{"-data-dir", dir, "-warmup", ""})
	resp, body1 := post(base)
	if got := resp.Header.Get("X-Mc-Cache"); got != "miss" {
		t.Fatalf("first request X-MC-Cache = %q, want miss", got)
	}
	cancel()
	select {
	case code := <-exited:
		if code != exitOK {
			t.Fatalf("first run exited %d (stderr: %s)", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("first run never exited")
	}
	if !strings.Contains(stdout.String(), "persisted 1 cached results") {
		t.Errorf("drain did not persist the cache:\n%s", stdout.String())
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	base2, stdout2, stderr2, exited2 := startDaemon(t, ctx2, []string{"-data-dir", dir, "-warmup", ""})
	if !strings.Contains(stdout2.String(), "recovered 1 cached results") {
		t.Errorf("restart did not recover the cache:\n%s", stdout2.String())
	}
	resp2, body2 := post(base2)
	if got := resp2.Header.Get("X-Mc-Cache"); got != "hit" {
		t.Errorf("request after restart X-MC-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("body after restart differs:\n%s\nvs\n%s", body1, body2)
	}
	cancel2()
	select {
	case code := <-exited2:
		if code != exitOK {
			t.Fatalf("second run exited %d (stderr: %s)", code, stderr2.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("second run never exited")
	}
}

// jsonString JSON-encodes s (quoting newlines in Bristol text).
func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return string(b)
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
