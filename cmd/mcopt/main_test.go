package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/tt"
	"repro/internal/xag"
)

// fullAdderBristol renders a small valid circuit in Bristol fashion.
func fullAdderBristol(t *testing.T) string {
	t.Helper()
	n := xag.New()
	x, y, cin := n.AddPI("a"), n.AddPI("b"), n.AddPI("cin")
	ab := n.Xor(x, y)
	n.AddPO(n.Xor(ab, cin), "sum")
	n.AddPO(n.Or(n.And(x, y), n.And(cin, ab)), "cout")
	var buf bytes.Buffer
	if err := n.WriteBristol(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func runMcopt(args ...string) (code int, stdout, stderr string) {
	return runMcoptStdin("", args...)
}

func runMcoptStdin(stdin string, args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitUsage(t *testing.T) {
	cases := [][]string{
		{},                                     // neither -in nor -bench
		{"-bench", "no-such-benchmark"},        // unknown benchmark
		{"-in", "x.txt", "-bench", "adder-32"}, // mutually exclusive
		{"-no-such-flag"},                      // flag parse error
		{"-bench", "adder-32", "stray-arg"},    // positional arguments
		{"-bench", "adder-32", "-k", "9"},      // cut size out of range
		{"-bench", "adder-32", "-k", "1"},      // cut size out of range
		{"-bench", "adder-32", "-cuts", "0"},   // cut limit out of range
		{"-bench", "adder-32", "-rounds", "-1"},
		{"-bench", "adder-32", "-timeout", "-5s"},
		{"-bench", "adder-32", "-workers", "-2"}, // negative worker count
		{"-bench", "adder-32", "-cost", "area"},  // unknown cost model
		{"-bench", "adder-32", "-cost", "Depth"}, // names are case-sensitive
	}
	for _, args := range cases {
		if code, _, _ := runMcopt(args...); code != exitUsage {
			t.Errorf("args %v: exit %d, want %d", args, code, exitUsage)
		}
	}
}

func TestExitParse(t *testing.T) {
	code, _, stderr := runMcoptStdin("this is not a circuit\n", "-in", "-")
	if code != exitParse {
		t.Fatalf("garbage input: exit %d, want %d (stderr: %s)", code, exitParse, stderr)
	}
	if stderr == "" {
		t.Fatal("parse failure produced no diagnostic")
	}

	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("3 4\n1 1\n1 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runMcopt("-in", bad); code != exitParse {
		t.Fatalf("truncated file: exit %d, want %d", code, exitParse)
	}
}

func TestExitIOOnMissingFile(t *testing.T) {
	code, _, _ := runMcopt("-in", filepath.Join(t.TempDir(), "absent.txt"))
	if code != exitIO {
		t.Fatalf("missing file: exit %d, want %d", code, exitIO)
	}
}

func TestOptimizeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.txt")
	code, _, stderr := runMcoptStdin(fullAdderBristol(t), "-in", "-", "-out", out)
	if code != exitOK {
		t.Fatalf("exit %d, want 0 (stderr: %s)", code, stderr)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	net, err := xag.ReadBristol(f)
	if err != nil {
		t.Fatalf("output does not parse back: %v", err)
	}
	if net.NumAnds() != 1 {
		t.Fatalf("full adder optimized to %d ANDs, want 1", net.NumAnds())
	}
}

// TestDumpWritesInputUnoptimized: -dump must emit the loaded circuit
// byte-identically to what the input round-trips to, without rewriting.
func TestDumpWritesInputUnoptimized(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "dump.txt")
	code, _, stderr := runMcopt("-bench", "adder-32", "-dump", "-out", out)
	if code != exitOK {
		t.Fatalf("exit %d, want 0 (stderr: %s)", code, stderr)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	net, err := xag.ReadBristol(strings.NewReader(string(data)))
	if err != nil {
		t.Fatalf("dump output does not parse back: %v", err)
	}
	// adder-32 unoptimized carries more than the optimal 32 ANDs; a dump
	// that secretly optimized would collapse it.
	if net.NumAnds() <= 32 {
		t.Fatalf("dump appears optimized: %d ANDs", net.NumAnds())
	}

	if code, _, _ := runMcopt("-bench", "adder-32", "-dump"); code != exitUsage {
		t.Fatalf("-dump without -out: exit %d, want %d", code, exitUsage)
	}
}

// TestCostFlagRuns: every valid -cost value runs end to end, and a depth run
// on an arithmetic benchmark reports a reduced AND depth in the summary.
func TestCostFlagRuns(t *testing.T) {
	for _, cost := range []string{"mc", "size", "depth"} {
		code, _, stderr := runMcopt("-bench", "adder-32", "-cost", cost, "-verify")
		if code != exitOK {
			t.Fatalf("-cost %s: exit %d (stderr: %s)", cost, code, stderr)
		}
		if !strings.Contains(stderr, "AND-depth") {
			t.Fatalf("-cost %s: summary lacks AND-depth: %s", cost, stderr)
		}
	}
}

func TestListExitsOK(t *testing.T) {
	code, stdout, _ := runMcopt("-list")
	if code != exitOK || !strings.Contains(stdout, "adder") {
		t.Fatalf("exit %d, stdout %q", code, stdout)
	}
}

func TestExitVerify(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	// Complement every cut function: rewrites stay internally consistent but
	// wrong, so only the -verify miter catches them — and must exit 4.
	faultinject.Set(faultinject.PointCutFunction, func(p any) {
		f := p.(*tt.T)
		*f = f.Not()
	})
	code, _, stderr := runMcoptStdin(fullAdderBristol(t), "-in", "-", "-verify")
	if code != exitVerify {
		t.Fatalf("exit %d, want %d (stderr: %s)", code, exitVerify, stderr)
	}
	if !strings.Contains(stderr, "rolled back") {
		t.Fatalf("no rollback diagnostic: %s", stderr)
	}
}

func TestTimeoutKeepsPartialResult(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	faultinject.Set(faultinject.PointNode, faultinject.DelayHook(2e6)) // 2ms per node

	dir := t.TempDir()
	out := filepath.Join(dir, "out.txt")
	code, _, stderr := runMcopt("-bench", "adder-32", "-timeout", "50ms", "-verify", "-out", out)
	if code != exitOK {
		t.Fatalf("timed-out run: exit %d, want 0 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "stopped after") {
		t.Fatalf("no timeout diagnostic: %s", stderr)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("timed-out run wrote no output: %v", err)
	}
	defer f.Close()
	if _, err := xag.ReadBristol(f); err != nil {
		t.Fatalf("partial output does not parse: %v", err)
	}
}

// TestProfilingFlags: -cpuprofile/-memprofile/-trace write non-empty
// profiles around the optimization.
func TestProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	tr := filepath.Join(dir, "trace.out")
	code, _, stderr := runMcopt("-bench", "adder-32",
		"-cpuprofile", cpu, "-memprofile", mem, "-trace", tr)
	if code != exitOK {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, p := range []string{cpu, mem, tr} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s: empty profile", p)
		}
	}
}

func TestProfilingBadPath(t *testing.T) {
	code, _, stderr := runMcopt("-bench", "adder-32",
		"-cpuprofile", filepath.Join(t.TempDir(), "no", "dir", "cpu.out"))
	if code != exitIO {
		t.Fatalf("exit %d, want %d; stderr: %s", code, exitIO, stderr)
	}
}

// TestIncrementalFlagIdentical: -incremental=false must write a
// byte-identical optimized circuit — the flag trades time, never results.
func TestIncrementalFlagIdentical(t *testing.T) {
	dir := t.TempDir()
	outInc := filepath.Join(dir, "inc.txt")
	outFull := filepath.Join(dir, "full.txt")
	if code, _, stderr := runMcopt("-bench", "adder-32", "-out", outInc); code != exitOK {
		t.Fatalf("incremental run: exit %d, stderr: %s", code, stderr)
	}
	if code, _, stderr := runMcopt("-bench", "adder-32", "-incremental=false", "-out", outFull); code != exitOK {
		t.Fatalf("full run: exit %d, stderr: %s", code, stderr)
	}
	a, err := os.ReadFile(outInc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(outFull)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("-incremental=false changed the optimized circuit")
	}
}

// TestDBSaveAndReload persists the synthesis database from one run and
// reloads it in the next: the second run must produce the identical circuit,
// and the saved file must pass `mcdb verify` semantics (it reloads clean).
func TestDBSaveAndReload(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "mc.snap")
	out1 := filepath.Join(dir, "one.txt")
	out2 := filepath.Join(dir, "two.txt")

	code, _, errOut := runMcopt("-bench", "decoder", "-rounds", "1", "-db-save", dbPath, "-out", out1, "-v")
	if code != exitOK {
		t.Fatalf("save run: exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "db: saved") {
		t.Fatalf("save not reported: %s", errOut)
	}
	if stale, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*")); len(stale) != 0 {
		t.Fatalf("atomic save left temp files: %v", stale)
	}

	code, _, errOut = runMcopt("-bench", "decoder", "-rounds", "1", "-db", dbPath, "-out", out2, "-v")
	if code != exitOK {
		t.Fatalf("load run: exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "db: loaded") || strings.Contains(errOut, "quarantined)") && !strings.Contains(errOut, "(0 quarantined)") {
		t.Fatalf("load not clean: %s", errOut)
	}
	b1, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("preloaded database changed the optimized circuit")
	}
}

func TestDBLoadMissingFileFails(t *testing.T) {
	code, _, _ := runMcopt("-bench", "decoder", "-rounds", "1",
		"-db", filepath.Join(t.TempDir(), "missing.snap"))
	if code != exitIO {
		t.Fatalf("exit %d, want %d", code, exitIO)
	}
}
