// Command mcopt minimizes the multiplicative complexity (AND-gate count) of
// a logic network, implementing the cut-rewriting algorithm of Testa et al.,
// "Reducing the Multiplicative Complexity in Logic Networks for Cryptography
// and Security Applications" (DAC 2019).
//
// Circuits are read and written in Bristol fashion, the standard format of
// the MPC benchmark repositories:
//
//	mcopt -in adder64.txt -out adder64.opt.txt
//	mcopt -bench sha-256 -rounds 2 -v
//	mcopt -bench adder-32 -dot adder.dot
//	mcopt -in big.txt -timeout 30s -verify -out big.opt.txt
//	mcopt -bench adder-64 -cost depth -verify
//	mcopt -bench sha-256 -cpuprofile cpu.out -memprofile mem.out
//
// The -cpuprofile, -memprofile, and -trace flags capture standard Go
// profiles of the optimization; the engine labels its samples per pipeline
// stage, so `go tool pprof -tagfocus stage=classify cpu.out` isolates one
// stage. -incremental=false disables cross-round reuse (the result is
// bit-identical either way; the flag exists for baseline timing and
// debugging).
//
// The -cost flag selects the optimization objective: mc (AND count, the
// paper's multiplicative complexity, default), size (AND+XOR count), or
// depth (multiplicative depth — the longest AND chain, which dominates FHE
// noise growth and T-depth).
//
// Exit codes: 0 on success (including a run stopped by -timeout, which
// still writes the partially optimized circuit), 1 on I/O errors, 2 on
// usage errors, 3 when the input circuit fails to parse, and 4 when
// -verify finds a rewriting round inequivalent to the input.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/mcdb"
	"repro/internal/profiling"
	"repro/internal/xag"
	"repro/internal/xoropt"
)

// Distinct exit codes so scripted callers can tell failure classes apart.
const (
	exitOK     = 0
	exitIO     = 1
	exitUsage  = 2
	exitParse  = 3
	exitVerify = 4
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcopt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		inPath    = fs.String("in", "", "input circuit (Bristol fashion); - for stdin")
		outPath   = fs.String("out", "", "write optimized circuit here (Bristol fashion)")
		dotPath   = fs.String("dot", "", "write optimized circuit as Graphviz DOT")
		benchName = fs.String("bench", "", "optimize a built-in benchmark instead of -in (see -list)")
		list      = fs.Bool("list", false, "list built-in benchmarks")
		dump      = fs.Bool("dump", false, "write the input network to -out unoptimized and exit")
		rounds    = fs.Int("rounds", 0, "maximum rewriting rounds (0 = until convergence)")
		cutSize   = fs.Int("k", 6, "cut size K (2..6)")
		cutLimit  = fs.Int("cuts", 12, "priority cuts per node")
		costName  = fs.String("cost", "mc", "cost model: mc (AND count), size (AND+XOR), or depth (multiplicative depth)")
		zeroGain  = fs.Bool("zero-gain", false, "also apply zero-gain rewrites")
		xorCSE    = fs.Bool("xoropt", false, "after MC rewriting, shrink the XOR count (Paar CSE on the linear blocks)")
		verify    = fs.Bool("verify", false, "miter-check every round against the input; roll back and fail on mismatch")
		timeout   = fs.Duration("timeout", 0, "stop optimizing after this long and keep the best network so far (0 = no limit)")
		workers   = fs.Int("workers", 0, "worker goroutines for the parallel stages (0 = GOMAXPROCS); the result is identical for any value")
		seqCommit = fs.Bool("seq-commit", false, "force the sequential reference commit pass (identical result; for bisecting determinism bugs)")
		incr      = fs.Bool("incremental", true, "reuse cut lists and classifications across rounds (identical result either way)")
		dbPath    = fs.String("db", "", "preload a persisted synthesis database (snapshot or legacy gob)")
		dbSave    = fs.String("db-save", "", "persist the synthesis database here afterwards (atomic replace)")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile here (filter stages with -tagfocus stage=...)")
		memProf   = fs.String("memprofile", "", "write a heap allocation profile here")
		tracePath = fs.String("trace", "", "write a runtime execution trace here")
		verbose   = fs.Bool("v", false, "per-round statistics")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "mcopt: unexpected arguments: %v\n", fs.Args())
		return exitUsage
	}
	// Validate option ranges at the boundary: the library panics on a cut
	// size it has no truth tables for, which must surface as a usage error,
	// not a crash.
	switch {
	case *cutSize < 2 || *cutSize > 6:
		fmt.Fprintf(stderr, "mcopt: -k must be in 2..6, got %d\n", *cutSize)
		return exitUsage
	case *cutLimit < 1:
		fmt.Fprintf(stderr, "mcopt: -cuts must be at least 1, got %d\n", *cutLimit)
		return exitUsage
	case *rounds < 0:
		fmt.Fprintf(stderr, "mcopt: -rounds must not be negative, got %d\n", *rounds)
		return exitUsage
	case *timeout < 0:
		fmt.Fprintf(stderr, "mcopt: -timeout must not be negative, got %v\n", *timeout)
		return exitUsage
	case *workers < 0:
		fmt.Fprintf(stderr, "mcopt: -workers must not be negative, got %d\n", *workers)
		return exitUsage
	}
	model, err := cost.FromName(*costName)
	if err != nil {
		fmt.Fprintf(stderr, "mcopt: -cost: %v\n", err)
		return exitUsage
	}

	if *list {
		for _, b := range append(bench.EPFL(), bench.MPC()...) {
			fmt.Fprintf(stdout, "%-24s %s\n", b.Name, b.Group)
		}
		return exitOK
	}

	net, code, err := loadNetwork(*inPath, *benchName, stdin)
	if err != nil {
		fmt.Fprintln(stderr, "mcopt:", err)
		return code
	}

	if *dump {
		if *outPath == "" {
			fmt.Fprintln(stderr, "mcopt: -dump needs -out")
			return exitUsage
		}
		if err := writeFile(*outPath, net.WriteBristol); err != nil {
			fmt.Fprintln(stderr, "mcopt:", err)
			return exitIO
		}
		return exitOK
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := core.Options{
		CutSize:          *cutSize,
		CutLimit:         *cutLimit,
		Cost:             model,
		MaxRounds:        *rounds,
		AllowZeroGain:    *zeroGain,
		Verify:           *verify,
		Workers:          *workers,
		NoIncremental:    !*incr,
		SequentialCommit: *seqCommit,
	}
	if *dbPath != "" || *dbSave != "" {
		opts.DB = mcdb.New(mcdb.Options{})
	}
	if *dbPath != "" {
		rep, err := opts.DB.LoadFile(*dbPath)
		if err != nil {
			fmt.Fprintln(stderr, "mcopt:", err)
			return exitIO
		}
		if *verbose {
			fmt.Fprintf(stderr, "db: loaded %d entries from %s (%d quarantined)\n", rep.Loaded, *dbPath, rep.Quarantined)
		}
	}
	if *verbose {
		opts.Logf = func(format string, a ...any) {
			fmt.Fprintf(stderr, format+"\n", a...)
		}
	}

	prof := profiling.Config{CPUProfile: *cpuProf, MemProfile: *memProf, Trace: *tracePath}
	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(stderr, "mcopt:", err)
		return exitIO
	}

	before := net.CountGates()
	res := core.MinimizeMCContext(ctx, net, opts)
	if err := stopProf(); err != nil {
		fmt.Fprintln(stderr, "mcopt:", err)
		return exitIO
	}

	var verr *core.VerifyError
	switch {
	case errors.As(res.Err, &verr):
		fmt.Fprintln(stderr, "mcopt:", verr)
		return exitVerify
	case res.Interrupted:
		fmt.Fprintf(stderr, "mcopt: stopped after %v (%v); keeping the network optimized so far\n",
			*timeout, res.Err)
	}

	if *xorCSE {
		shrunk := xoropt.Optimize(res.Network)
		if *verbose {
			fmt.Fprintf(stderr, "xoropt: XOR %d -> %d\n",
				res.Network.NumXors(), shrunk.NumXors())
		}
		res.Network = shrunk
	}
	after := res.Network.CountGates()

	if *verbose {
		for i, r := range res.Rounds {
			fmt.Fprintf(stderr, "round %2d: AND %6d -> %6d  XOR %6d -> %6d  (%d rewrites, %v)\n",
				i+1, r.Before.And, r.After.And, r.Before.Xor, r.After.Xor,
				r.Replacements, r.Duration.Round(1e6))
		}
		if d := res.Degraded; d.Total() > 0 {
			fmt.Fprintf(stderr, "degradation: %d rejected rewrites, %d invalid entries, %d incomplete classifications, %d recovered panics\n",
				d.RejectedRewrites, d.InvalidEntries, d.IncompleteClassifications, d.RecoveredPanics)
		}
	}
	fmt.Fprintf(stderr, "AND %d -> %d (%.0f%%)  XOR %d -> %d  AND-depth %d -> %d  rounds %d\n",
		before.And, after.And, 100*(1-ratio(after.And, before.And)),
		before.Xor, after.Xor, before.AndDepth, after.AndDepth, len(res.Rounds))

	if *outPath != "" {
		if err := writeFile(*outPath, res.Network.WriteBristol); err != nil {
			fmt.Fprintln(stderr, "mcopt:", err)
			return exitIO
		}
	}
	if *dotPath != "" {
		if err := writeFile(*dotPath, res.Network.WriteDOT); err != nil {
			fmt.Fprintln(stderr, "mcopt:", err)
			return exitIO
		}
	}
	if *dbSave != "" {
		// Atomic replace: an interrupted save leaves the previous database
		// intact instead of a torn file.
		n, err := opts.DB.SaveFile(*dbSave)
		if err != nil {
			fmt.Fprintln(stderr, "mcopt:", err)
			return exitIO
		}
		if *verbose {
			fmt.Fprintf(stderr, "db: saved %d entries to %s\n", n, *dbSave)
		}
	}
	return exitOK
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 1
	}
	return float64(a) / float64(b)
}

// loadNetwork resolves the input circuit and classifies failures: usage
// errors (no input, unknown benchmark), I/O errors, and parse errors each
// map to their own exit code.
func loadNetwork(inPath, benchName string, stdin io.Reader) (*xag.Network, int, error) {
	parse := func(r io.Reader, name string) (*xag.Network, int, error) {
		net, err := xag.ReadBristol(r)
		if err != nil {
			return nil, exitParse, fmt.Errorf("%s: %v", name, err)
		}
		return net, exitOK, nil
	}
	switch {
	case benchName != "" && inPath != "":
		return nil, exitUsage, fmt.Errorf("-in and -bench are mutually exclusive")
	case benchName != "":
		b, ok := bench.ByName(benchName)
		if !ok {
			return nil, exitUsage, fmt.Errorf("unknown benchmark %q (try -list)", benchName)
		}
		return b.Build(), exitOK, nil
	case inPath == "-":
		return parse(stdin, "stdin")
	case inPath != "":
		f, err := os.Open(inPath)
		if err != nil {
			return nil, exitIO, err
		}
		defer f.Close()
		return parse(f, inPath)
	}
	return nil, exitUsage, fmt.Errorf("need -in or -bench (see -h)")
}
