// Command mcopt minimizes the multiplicative complexity (AND-gate count) of
// a logic network, implementing the cut-rewriting algorithm of Testa et al.,
// "Reducing the Multiplicative Complexity in Logic Networks for Cryptography
// and Security Applications" (DAC 2019).
//
// Circuits are read and written in Bristol fashion, the standard format of
// the MPC benchmark repositories:
//
//	mcopt -in adder64.txt -out adder64.opt.txt
//	mcopt -bench sha-256 -rounds 2 -v
//	mcopt -bench adder-32 -dot adder.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/xag"
	"repro/internal/xoropt"
)

func main() {
	var (
		inPath    = flag.String("in", "", "input circuit (Bristol fashion); - for stdin")
		outPath   = flag.String("out", "", "write optimized circuit here (Bristol fashion)")
		dotPath   = flag.String("dot", "", "write optimized circuit as Graphviz DOT")
		benchName = flag.String("bench", "", "optimize a built-in benchmark instead of -in (see -list)")
		list      = flag.Bool("list", false, "list built-in benchmarks")
		rounds    = flag.Int("rounds", 0, "maximum rewriting rounds (0 = until convergence)")
		cutSize   = flag.Int("k", 6, "cut size K (2..6)")
		cutLimit  = flag.Int("cuts", 12, "priority cuts per node")
		zeroGain  = flag.Bool("zero-gain", false, "also apply zero-gain rewrites")
		xorCSE    = flag.Bool("xoropt", false, "after MC rewriting, shrink the XOR count (Paar CSE on the linear blocks)")
		verbose   = flag.Bool("v", false, "per-round statistics")
	)
	flag.Parse()

	if *list {
		for _, b := range append(bench.EPFL(), bench.MPC()...) {
			fmt.Printf("%-24s %s\n", b.Name, b.Group)
		}
		return
	}

	net, err := loadNetwork(*inPath, *benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcopt:", err)
		os.Exit(1)
	}

	before := net.CountGates()
	res := core.MinimizeMC(net, core.Options{
		CutSize:       *cutSize,
		CutLimit:      *cutLimit,
		MaxRounds:     *rounds,
		AllowZeroGain: *zeroGain,
	})
	if *xorCSE {
		shrunk := xoropt.Optimize(res.Network)
		if *verbose {
			fmt.Fprintf(os.Stderr, "xoropt: XOR %d -> %d\n",
				res.Network.NumXors(), shrunk.NumXors())
		}
		res.Network = shrunk
	}
	after := res.Network.CountGates()

	if *verbose {
		for i, r := range res.Rounds {
			fmt.Fprintf(os.Stderr, "round %2d: AND %6d -> %6d  XOR %6d -> %6d  (%d rewrites, %v)\n",
				i+1, r.Before.And, r.After.And, r.Before.Xor, r.After.Xor,
				r.Replacements, r.Duration.Round(1e6))
		}
	}
	fmt.Fprintf(os.Stderr, "AND %d -> %d (%.0f%%)  XOR %d -> %d  AND-depth %d -> %d  rounds %d\n",
		before.And, after.And, 100*(1-ratio(after.And, before.And)),
		before.Xor, after.Xor, before.AndDepth, after.AndDepth, len(res.Rounds))

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcopt:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := res.Network.WriteBristol(f); err != nil {
			fmt.Fprintln(os.Stderr, "mcopt:", err)
			os.Exit(1)
		}
	}
	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcopt:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := res.Network.WriteDOT(f); err != nil {
			fmt.Fprintln(os.Stderr, "mcopt:", err)
			os.Exit(1)
		}
	}
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 1
	}
	return float64(a) / float64(b)
}

func loadNetwork(inPath, benchName string) (*xag.Network, error) {
	switch {
	case benchName != "":
		b, ok := bench.ByName(benchName)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q (try -list)", benchName)
		}
		return b.Build(), nil
	case inPath == "-":
		return xag.ReadBristol(os.Stdin)
	case inPath != "":
		f, err := os.Open(inPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return xag.ReadBristol(f)
	}
	return nil, fmt.Errorf("need -in or -bench (see -h)")
}
