// Command mcdb inspects the multiplicative-complexity database: it
// classifies Boolean functions up to affine equivalence and synthesizes
// AND-minimal circuits for their class representatives.
//
//	mcdb -classify e8 -n 3       # the majority function of the paper's example
//	mcdb -classes 4              # enumerate all 4-variable affine classes
//	mcdb -selftest
//	mcdb verify -dir /var/lib/mcserved     # offline durability check
//	mcdb verify -snapshot mc.snap
//	mcdb refine -snapshot mc.snap -budget 50000    # SAT-based offline refinement
//	mcdb refine -dir /var/lib/mcserved -worst 32
//
// Exit codes: 0 success, 1 I/O or selftest failure, 2 usage error. The
// verify subcommand exits 0 when every record validates, 1 on quarantinable
// damage (recovery would drop entries), and 2 when the input is unreadable.
// The refine subcommand follows the same convention: 0 when the pass ran
// clean, 1 when recovery quarantined records or the validation gate rejected
// a decoded model, and 2 when the input is unreadable or the usage is wrong.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/mcdb"
	"repro/internal/tt"
)

const (
	exitOK    = 0
	exitFail  = 1
	exitUsage = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "verify" {
		return runVerify(args[1:], stdout, stderr)
	}
	if len(args) > 0 && args[0] == "refine" {
		return runRefine(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("mcdb", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		classify = fs.String("classify", "", "hex truth table to classify and synthesize")
		nVars    = fs.Int("n", 0, "variable count for -classify (inferred from digits when 0)")
		classes  = fs.Int("classes", 0, "enumerate all affine classes of n ≤ 4 variables")
		selftest = fs.Bool("selftest", false, "verify class counts for n ≤ 4")
		savePath = fs.String("save", "", "persist synthesized entries to this file afterwards")
		loadPath = fs.String("load", "", "preload a previously saved database")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "mcdb: unexpected arguments: %v\n", fs.Args())
		return exitUsage
	}
	// Validate ranges at the boundary so library panics never surface as
	// crashes of the tool.
	switch {
	case *nVars < 0 || *nVars > tt.MaxVars:
		fmt.Fprintf(stderr, "mcdb: -n must be in 0..%d, got %d\n", tt.MaxVars, *nVars)
		return exitUsage
	case *classes < 0:
		fmt.Fprintf(stderr, "mcdb: -classes must not be negative, got %d\n", *classes)
		return exitUsage
	case *classes > 4:
		fmt.Fprintf(stderr, "mcdb: exhaustive enumeration supports n ≤ 4, got %d\n", *classes)
		return exitUsage
	}

	newDB := func() (*mcdb.DB, error) {
		db := mcdb.New(mcdb.Options{})
		if *loadPath != "" {
			// LoadFile sniffs the format (checksummed snapshot or legacy gob)
			// and quarantines damaged records instead of refusing the file.
			rep, err := db.LoadFile(*loadPath)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(stderr, "loaded %d entries from %s", rep.Loaded, *loadPath)
			if rep.Quarantined > 0 {
				fmt.Fprintf(stderr, " (%d quarantined)", rep.Quarantined)
			}
			fmt.Fprintln(stderr)
		}
		return db, nil
	}
	saveDB := func(db *mcdb.DB) error {
		if *savePath == "" {
			return nil
		}
		// Atomic replace: a crash mid-save leaves the previous file intact,
		// never a torn one.
		n, err := db.SaveFile(*savePath)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "saved %d entries to %s\n", n, *savePath)
		return nil
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "mcdb:", err)
		return exitFail
	}

	switch {
	case *classify != "":
		n := *nVars
		if n == 0 {
			for (1<<uint(n))/4 < len(*classify) {
				n++
			}
		}
		f, err := tt.Parse(*classify, n)
		if err != nil {
			fmt.Fprintln(stderr, "mcdb:", err)
			return exitUsage
		}
		db, err := newDB()
		if err != nil {
			return fail(err)
		}
		entry, res := db.Lookup(f)
		fmt.Fprintf(stdout, "function        %s (%d vars)\n", f, n)
		fmt.Fprintf(stdout, "representative  %s  complete=%v steps=%d\n", res.Repr, res.Complete, res.Steps)
		fmt.Fprintf(stdout, "MC              %d AND gates (proven minimal: %v)\n", entry.MC(), entry.Exact)
		fmt.Fprintf(stdout, "XOR cost        %d (circuit) + %d (affine transform)\n", entry.XorCost(), res.Tr.XorCost())
		fmt.Fprintf(stdout, "SLP steps       %v\n", entry.Steps)
		fmt.Fprintf(stdout, "output mask     %b\n", entry.Out)
		if err := saveDB(db); err != nil {
			return fail(err)
		}
		return exitOK

	case *classes > 0:
		db, err := newDB()
		if err != nil {
			return fail(err)
		}
		reprs := map[tt.T]int{}
		order := []tt.T{}
		for bits := uint64(0); bits < 1<<(1<<uint(*classes)); bits++ {
			res := db.Classify(tt.New(bits, *classes))
			if _, ok := reprs[res.Repr]; !ok {
				order = append(order, res.Repr)
			}
			reprs[res.Repr]++
		}
		fmt.Fprintf(stdout, "%d affine classes of %d-variable functions:\n", len(reprs), *classes)
		for _, r := range order {
			e := db.EntryFor(r)
			fmt.Fprintf(stdout, "  repr %-6s size %6d  MC %d (exact=%v)\n", r, reprs[r], e.MC(), e.Exact)
		}
		if err := saveDB(db); err != nil {
			return fail(err)
		}
		return exitOK

	case *selftest:
		want := []int{1, 1, 2, 3, 8}
		// Classes per multiplicative complexity, from the exact-synthesis
		// literature (every function of ≤4 variables has MC ≤ 3). The SAT
		// refiner re-proves each count below, cross-checking both synthesis
		// backends against the published distribution.
		wantMC := []map[int]int{
			nil,
			{0: 1},
			{0: 1, 1: 1},
			{0: 1, 1: 1, 2: 1},
			{0: 1, 1: 1, 2: 3, 3: 3},
		}
		ok := true
		for n := 1; n <= 4; n++ {
			db := mcdb.New(mcdb.Options{})
			reprs := map[tt.T]bool{}
			for bits := uint64(0); bits < 1<<(1<<uint(n)); bits++ {
				f := tt.New(bits, n)
				res := db.Classify(f)
				reprs[res.Repr] = true
				if got := res.Tr.Apply(res.Repr); got != f {
					fmt.Fprintf(stdout, "FAIL: n=%d f=%s reconstruction\n", n, f)
					return exitFail
				}
			}
			status := "ok"
			if len(reprs) != want[n] {
				status = fmt.Sprintf("FAIL (want %d)", want[n])
				ok = false
			}
			fmt.Fprintf(stdout, "n=%d: %6d classes %s\n", n, len(reprs), status)

			// Synthesize every representative, re-derive each optimality
			// proof with the SAT backend, and compare the proven MC
			// distribution against the published one.
			for r := range reprs {
				db.EntryFor(r)
			}
			rep := db.Refine(context.Background(), mcdb.RefineOptions{Reprove: true})
			dist := map[int]int{}
			for r := range reprs {
				e := db.EntryFor(r)
				if !e.Exact {
					fmt.Fprintf(stdout, "FAIL: n=%d repr %s not proven optimal\n", n, r)
					ok = false
				}
				dist[e.MC()]++
			}
			mcStatus := "ok"
			if rep.Improved != 0 || rep.Rejected != 0 || rep.Unknown != 0 {
				mcStatus = fmt.Sprintf("FAIL (refine improved=%d rejected=%d unknown=%d)",
					rep.Improved, rep.Rejected, rep.Unknown)
				ok = false
			}
			for mc, w := range wantMC[n] {
				if dist[mc] != w {
					mcStatus = fmt.Sprintf("FAIL (MC %d: %d classes, want %d)", mc, dist[mc], w)
					ok = false
				}
			}
			fmt.Fprintf(stdout, "n=%d: MC distribution %v, %d proven %s\n", n, dist, rep.Proven, mcStatus)
		}
		if !ok {
			return exitFail
		}
		return exitOK

	default:
		fs.Usage()
		return exitUsage
	}
}

// Verify exit codes (distinct from the main command's): clean, quarantinable
// damage, unreadable input or bad usage. The refine subcommand reuses them.
const (
	verifyClean      = 0
	verifyDamaged    = 1
	verifyUnreadable = 2
)

// runRefine is `mcdb refine`: one offline SAT-refinement pass over a
// snapshot file or a durable store directory. Improvements and
// proven-optimal stamps are persisted back — atomically for a snapshot
// file, through the journal plus a checkpoint for a store — so the next
// mcserved start (or -load) sees the tightened entries. Exit codes follow
// the verify convention: rejected models and quarantined records are
// damage (1), an unreadable input or bad usage is 2.
func runRefine(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcdb refine", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir     = fs.String("dir", "", "durable store directory (snapshot + journals) to refine")
		snap    = fs.String("snapshot", "", "single snapshot or legacy database file to refine")
		budget  = fs.Int64("budget", 0, "conflict budget per SAT query (0: default)")
		worst   = fs.Int("worst", 0, "refine only the N widest-gap entries (0: all)")
		reprove = fs.Bool("reprove", false, "re-derive optimality proofs for entries already proven")
	)
	if err := fs.Parse(args); err != nil {
		return verifyUnreadable
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "mcdb refine: unexpected arguments: %v\n", fs.Args())
		return verifyUnreadable
	}
	if (*dir == "") == (*snap == "") {
		fmt.Fprintln(stderr, "mcdb refine: need exactly one of -dir or -snapshot")
		fs.Usage()
		return verifyUnreadable
	}
	if *budget < 0 || *worst < 0 {
		fmt.Fprintln(stderr, "mcdb refine: -budget and -worst must not be negative")
		return verifyUnreadable
	}

	opts := mcdb.RefineOptions{Budget: *budget, WorstN: *worst, Reprove: *reprove}
	code := verifyClean
	damaged := func() {
		if code < verifyDamaged {
			code = verifyDamaged
		}
	}
	report := func(rep mcdb.RefineReport) {
		fmt.Fprintf(stdout, "refined: %d candidates, %d attempted, %d improved (%d ANDs saved), %d proven, %d unknown, %d rejected\n",
			rep.Candidates, rep.Attempted, rep.Improved, rep.AndsSaved, rep.Proven, rep.Unknown, rep.Rejected)
		if rep.Rejected > 0 {
			// The gate quarantined a decoded model: nothing wrong was admitted,
			// but the condition deserves the damaged exit code — an honest
			// solver never produces one.
			damaged()
		}
	}

	if *snap != "" {
		db := mcdb.New(mcdb.Options{})
		rep, err := db.LoadFile(*snap)
		if err != nil {
			fmt.Fprintf(stderr, "mcdb refine: %s: %v\n", *snap, err)
			return verifyUnreadable
		}
		fmt.Fprintf(stdout, "%s: %d entries loaded, %d quarantined\n", *snap, rep.Loaded, rep.Quarantined)
		if !rep.Clean() {
			damaged()
		}
		report(db.Refine(context.Background(), opts))
		n, err := db.SaveFile(*snap)
		if err != nil {
			fmt.Fprintf(stderr, "mcdb refine: %s: %v\n", *snap, err)
			return verifyUnreadable
		}
		fmt.Fprintf(stdout, "saved %d entries to %s\n", n, *snap)
		return code
	}

	// OpenStore creates missing directories for the daemon's benefit; an
	// offline refinement of a store that does not exist is a typo, not a
	// request for an empty one.
	if _, err := os.Stat(*dir); err != nil {
		fmt.Fprintf(stderr, "mcdb refine: %s: %v\n", *dir, err)
		return verifyUnreadable
	}
	db := mcdb.New(mcdb.Options{})
	store, rec, err := mcdb.OpenStore(*dir, db)
	if err != nil {
		fmt.Fprintf(stderr, "mcdb refine: %s: %v\n", *dir, err)
		return verifyUnreadable
	}
	defer store.Close()
	fmt.Fprintf(stdout, "%s: %d entries recovered, %d quarantined\n", *dir,
		rec.Snapshot.Loaded+rec.Journal.Loaded, rec.Snapshot.Quarantined+rec.Journal.Quarantined)
	if !rec.Clean() {
		damaged()
	}
	// Improvements are journaled as they are admitted; the checkpoint folds
	// them into the snapshot so recovery stays cheap.
	report(db.Refine(context.Background(), opts))
	info, err := store.Snapshot()
	if err != nil {
		fmt.Fprintf(stderr, "mcdb refine: snapshot: %v\n", err)
		return verifyUnreadable
	}
	fmt.Fprintf(stdout, "checkpointed %d entries to %s\n", info.Entries, info.Path)
	return code
}

// runVerify is `mcdb verify`: an offline validity check of durability
// artifacts. Loading already validates everything — checksum, structural
// invariants, and functional verification per record — so verify simply loads
// into a throwaway database and reports what would have been quarantined.
func runVerify(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcdb verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir  = fs.String("dir", "", "durable store directory (snapshot + journals) to verify")
		snap = fs.String("snapshot", "", "single snapshot or legacy database file to verify")
	)
	if err := fs.Parse(args); err != nil {
		return verifyUnreadable
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "mcdb verify: unexpected arguments: %v\n", fs.Args())
		return verifyUnreadable
	}
	if *dir == "" && *snap == "" {
		fmt.Fprintln(stderr, "mcdb verify: need -dir or -snapshot")
		fs.Usage()
		return verifyUnreadable
	}

	code := verifyClean
	report := func(name string, loaded, quarantined int, truncated bool, problems []string) {
		status := "ok"
		if quarantined > 0 || truncated {
			status = "DAMAGED"
			if code < verifyDamaged {
				code = verifyDamaged
			}
		}
		fmt.Fprintf(stdout, "%s: %s (%d entries valid, %d quarantined", name, status, loaded, quarantined)
		if truncated {
			fmt.Fprint(stdout, ", truncated")
		}
		fmt.Fprintln(stdout, ")")
		for _, p := range problems {
			fmt.Fprintf(stdout, "  %s\n", p)
		}
	}

	if *snap != "" {
		db := mcdb.New(mcdb.Options{})
		rep, err := db.LoadFile(*snap)
		if err != nil {
			fmt.Fprintf(stderr, "mcdb verify: %s: %v\n", *snap, err)
			code = verifyUnreadable
		} else {
			report(*snap, rep.Loaded, rep.Quarantined, rep.Truncated, rep.Problems)
		}
	}
	if *dir != "" {
		db := mcdb.New(mcdb.Options{})
		rec, err := mcdb.CheckStore(*dir, db)
		if err != nil {
			fmt.Fprintf(stderr, "mcdb verify: %s: %v\n", *dir, err)
			code = verifyUnreadable
		} else {
			report(*dir+" snapshot", rec.Snapshot.Loaded, rec.Snapshot.Quarantined, rec.Snapshot.Truncated, rec.Snapshot.Problems)
			report(fmt.Sprintf("%s journals (%d)", *dir, rec.Journals), rec.Journal.Loaded, rec.Journal.Quarantined, rec.Journal.Truncated, rec.Journal.Problems)
		}
	}
	return code
}
