// Command mcdb inspects the multiplicative-complexity database: it
// classifies Boolean functions up to affine equivalence and synthesizes
// AND-minimal circuits for their class representatives.
//
//	mcdb -classify e8 -n 3       # the majority function of the paper's example
//	mcdb -classes 4              # enumerate all 4-variable affine classes
//	mcdb -selftest
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/mcdb"
	"repro/internal/spectral"
	"repro/internal/tt"
)

func main() {
	var (
		classify = flag.String("classify", "", "hex truth table to classify and synthesize")
		nVars    = flag.Int("n", 0, "variable count for -classify (inferred from digits when 0)")
		classes  = flag.Int("classes", 0, "enumerate all affine classes of n ≤ 4 variables")
		selftest = flag.Bool("selftest", false, "verify class counts for n ≤ 4")
		savePath = flag.String("save", "", "persist synthesized entries to this file afterwards")
		loadPath = flag.String("load", "", "preload a previously saved database")
	)
	flag.Parse()

	newDB := func() *mcdb.DB {
		db := mcdb.New(mcdb.Options{})
		if *loadPath != "" {
			f, err := os.Open(*loadPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mcdb:", err)
				os.Exit(1)
			}
			n, err := db.Load(f)
			f.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, "mcdb:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "loaded %d entries from %s\n", n, *loadPath)
		}
		return db
	}
	saveDB := func(db *mcdb.DB) {
		if *savePath == "" {
			return
		}
		f, err := os.Create(*savePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcdb:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := db.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, "mcdb:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "saved %d entries to %s\n", db.NumEntries(), *savePath)
	}

	switch {
	case *classify != "":
		n := *nVars
		if n == 0 {
			for (1<<uint(n))/4 < len(*classify) {
				n++
			}
		}
		f, err := tt.Parse(*classify, n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcdb:", err)
			os.Exit(1)
		}
		db := newDB()
		entry, res := db.Lookup(f)
		fmt.Printf("function        %s (%d vars)\n", f, n)
		fmt.Printf("representative  %s  complete=%v steps=%d\n", res.Repr, res.Complete, res.Steps)
		fmt.Printf("MC              %d AND gates (proven minimal: %v)\n", entry.MC(), entry.Exact)
		fmt.Printf("XOR cost        %d (circuit) + %d (affine transform)\n", entry.XorCost(), res.Tr.XorCost())
		fmt.Printf("SLP steps       %v\n", entry.Steps)
		fmt.Printf("output mask     %b\n", entry.Out)
		saveDB(db)

	case *classes > 0:
		if *classes > 4 {
			fmt.Fprintln(os.Stderr, "mcdb: exhaustive enumeration supports n ≤ 4")
			os.Exit(1)
		}
		db := newDB()
		reprs := map[tt.T]int{}
		order := []tt.T{}
		for bits := uint64(0); bits < 1<<(1<<uint(*classes)); bits++ {
			res := db.Classify(tt.New(bits, *classes))
			if _, ok := reprs[res.Repr]; !ok {
				order = append(order, res.Repr)
			}
			reprs[res.Repr]++
		}
		fmt.Printf("%d affine classes of %d-variable functions:\n", len(reprs), *classes)
		for _, r := range order {
			e := db.EntryFor(r)
			fmt.Printf("  repr %-6s size %6d  MC %d (exact=%v)\n", r, reprs[r], e.MC(), e.Exact)
		}
		saveDB(db)

	case *selftest:
		want := []int{1, 1, 2, 3, 8}
		for n := 1; n <= 4; n++ {
			db := mcdb.New(mcdb.Options{})
			reprs := map[tt.T]bool{}
			for bits := uint64(0); bits < 1<<(1<<uint(n)); bits++ {
				f := tt.New(bits, n)
				res := db.Classify(f)
				reprs[res.Repr] = true
				if got := res.Tr.Apply(res.Repr); got != f {
					fmt.Printf("FAIL: n=%d f=%s reconstruction\n", n, f)
					os.Exit(1)
				}
			}
			status := "ok"
			if len(reprs) != want[n] {
				status = fmt.Sprintf("FAIL (want %d)", want[n])
			}
			fmt.Printf("n=%d: %6d classes %s\n", n, len(reprs), status)
		}
		_ = spectral.DefaultLimit

	default:
		flag.Usage()
	}
}
