// Command mcdb inspects the multiplicative-complexity database: it
// classifies Boolean functions up to affine equivalence and synthesizes
// AND-minimal circuits for their class representatives.
//
//	mcdb -classify e8 -n 3       # the majority function of the paper's example
//	mcdb -classes 4              # enumerate all 4-variable affine classes
//	mcdb -selftest
//	mcdb verify -dir /var/lib/mcserved     # offline durability check
//	mcdb verify -snapshot mc.snap
//
// Exit codes: 0 success, 1 I/O or selftest failure, 2 usage error. The
// verify subcommand exits 0 when every record validates, 1 on quarantinable
// damage (recovery would drop entries), and 2 when the input is unreadable.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/mcdb"
	"repro/internal/tt"
)

const (
	exitOK    = 0
	exitFail  = 1
	exitUsage = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "verify" {
		return runVerify(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("mcdb", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		classify = fs.String("classify", "", "hex truth table to classify and synthesize")
		nVars    = fs.Int("n", 0, "variable count for -classify (inferred from digits when 0)")
		classes  = fs.Int("classes", 0, "enumerate all affine classes of n ≤ 4 variables")
		selftest = fs.Bool("selftest", false, "verify class counts for n ≤ 4")
		savePath = fs.String("save", "", "persist synthesized entries to this file afterwards")
		loadPath = fs.String("load", "", "preload a previously saved database")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "mcdb: unexpected arguments: %v\n", fs.Args())
		return exitUsage
	}
	// Validate ranges at the boundary so library panics never surface as
	// crashes of the tool.
	switch {
	case *nVars < 0 || *nVars > tt.MaxVars:
		fmt.Fprintf(stderr, "mcdb: -n must be in 0..%d, got %d\n", tt.MaxVars, *nVars)
		return exitUsage
	case *classes < 0:
		fmt.Fprintf(stderr, "mcdb: -classes must not be negative, got %d\n", *classes)
		return exitUsage
	case *classes > 4:
		fmt.Fprintf(stderr, "mcdb: exhaustive enumeration supports n ≤ 4, got %d\n", *classes)
		return exitUsage
	}

	newDB := func() (*mcdb.DB, error) {
		db := mcdb.New(mcdb.Options{})
		if *loadPath != "" {
			// LoadFile sniffs the format (checksummed snapshot or legacy gob)
			// and quarantines damaged records instead of refusing the file.
			rep, err := db.LoadFile(*loadPath)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(stderr, "loaded %d entries from %s", rep.Loaded, *loadPath)
			if rep.Quarantined > 0 {
				fmt.Fprintf(stderr, " (%d quarantined)", rep.Quarantined)
			}
			fmt.Fprintln(stderr)
		}
		return db, nil
	}
	saveDB := func(db *mcdb.DB) error {
		if *savePath == "" {
			return nil
		}
		// Atomic replace: a crash mid-save leaves the previous file intact,
		// never a torn one.
		n, err := db.SaveFile(*savePath)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "saved %d entries to %s\n", n, *savePath)
		return nil
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "mcdb:", err)
		return exitFail
	}

	switch {
	case *classify != "":
		n := *nVars
		if n == 0 {
			for (1<<uint(n))/4 < len(*classify) {
				n++
			}
		}
		f, err := tt.Parse(*classify, n)
		if err != nil {
			fmt.Fprintln(stderr, "mcdb:", err)
			return exitUsage
		}
		db, err := newDB()
		if err != nil {
			return fail(err)
		}
		entry, res := db.Lookup(f)
		fmt.Fprintf(stdout, "function        %s (%d vars)\n", f, n)
		fmt.Fprintf(stdout, "representative  %s  complete=%v steps=%d\n", res.Repr, res.Complete, res.Steps)
		fmt.Fprintf(stdout, "MC              %d AND gates (proven minimal: %v)\n", entry.MC(), entry.Exact)
		fmt.Fprintf(stdout, "XOR cost        %d (circuit) + %d (affine transform)\n", entry.XorCost(), res.Tr.XorCost())
		fmt.Fprintf(stdout, "SLP steps       %v\n", entry.Steps)
		fmt.Fprintf(stdout, "output mask     %b\n", entry.Out)
		if err := saveDB(db); err != nil {
			return fail(err)
		}
		return exitOK

	case *classes > 0:
		db, err := newDB()
		if err != nil {
			return fail(err)
		}
		reprs := map[tt.T]int{}
		order := []tt.T{}
		for bits := uint64(0); bits < 1<<(1<<uint(*classes)); bits++ {
			res := db.Classify(tt.New(bits, *classes))
			if _, ok := reprs[res.Repr]; !ok {
				order = append(order, res.Repr)
			}
			reprs[res.Repr]++
		}
		fmt.Fprintf(stdout, "%d affine classes of %d-variable functions:\n", len(reprs), *classes)
		for _, r := range order {
			e := db.EntryFor(r)
			fmt.Fprintf(stdout, "  repr %-6s size %6d  MC %d (exact=%v)\n", r, reprs[r], e.MC(), e.Exact)
		}
		if err := saveDB(db); err != nil {
			return fail(err)
		}
		return exitOK

	case *selftest:
		want := []int{1, 1, 2, 3, 8}
		ok := true
		for n := 1; n <= 4; n++ {
			db := mcdb.New(mcdb.Options{})
			reprs := map[tt.T]bool{}
			for bits := uint64(0); bits < 1<<(1<<uint(n)); bits++ {
				f := tt.New(bits, n)
				res := db.Classify(f)
				reprs[res.Repr] = true
				if got := res.Tr.Apply(res.Repr); got != f {
					fmt.Fprintf(stdout, "FAIL: n=%d f=%s reconstruction\n", n, f)
					return exitFail
				}
			}
			status := "ok"
			if len(reprs) != want[n] {
				status = fmt.Sprintf("FAIL (want %d)", want[n])
				ok = false
			}
			fmt.Fprintf(stdout, "n=%d: %6d classes %s\n", n, len(reprs), status)
		}
		if !ok {
			return exitFail
		}
		return exitOK

	default:
		fs.Usage()
		return exitUsage
	}
}

// Verify exit codes (distinct from the main command's): clean, quarantinable
// damage, unreadable input or bad usage.
const (
	verifyClean      = 0
	verifyDamaged    = 1
	verifyUnreadable = 2
)

// runVerify is `mcdb verify`: an offline validity check of durability
// artifacts. Loading already validates everything — checksum, structural
// invariants, and functional verification per record — so verify simply loads
// into a throwaway database and reports what would have been quarantined.
func runVerify(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcdb verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir  = fs.String("dir", "", "durable store directory (snapshot + journals) to verify")
		snap = fs.String("snapshot", "", "single snapshot or legacy database file to verify")
	)
	if err := fs.Parse(args); err != nil {
		return verifyUnreadable
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "mcdb verify: unexpected arguments: %v\n", fs.Args())
		return verifyUnreadable
	}
	if *dir == "" && *snap == "" {
		fmt.Fprintln(stderr, "mcdb verify: need -dir or -snapshot")
		fs.Usage()
		return verifyUnreadable
	}

	code := verifyClean
	report := func(name string, loaded, quarantined int, truncated bool, problems []string) {
		status := "ok"
		if quarantined > 0 || truncated {
			status = "DAMAGED"
			if code < verifyDamaged {
				code = verifyDamaged
			}
		}
		fmt.Fprintf(stdout, "%s: %s (%d entries valid, %d quarantined", name, status, loaded, quarantined)
		if truncated {
			fmt.Fprint(stdout, ", truncated")
		}
		fmt.Fprintln(stdout, ")")
		for _, p := range problems {
			fmt.Fprintf(stdout, "  %s\n", p)
		}
	}

	if *snap != "" {
		db := mcdb.New(mcdb.Options{})
		rep, err := db.LoadFile(*snap)
		if err != nil {
			fmt.Fprintf(stderr, "mcdb verify: %s: %v\n", *snap, err)
			code = verifyUnreadable
		} else {
			report(*snap, rep.Loaded, rep.Quarantined, rep.Truncated, rep.Problems)
		}
	}
	if *dir != "" {
		db := mcdb.New(mcdb.Options{})
		rec, err := mcdb.CheckStore(*dir, db)
		if err != nil {
			fmt.Fprintf(stderr, "mcdb verify: %s: %v\n", *dir, err)
			code = verifyUnreadable
		} else {
			report(*dir+" snapshot", rec.Snapshot.Loaded, rec.Snapshot.Quarantined, rec.Snapshot.Truncated, rec.Snapshot.Problems)
			report(fmt.Sprintf("%s journals (%d)", *dir, rec.Journals), rec.Journal.Loaded, rec.Journal.Quarantined, rec.Journal.Truncated, rec.Journal.Problems)
		}
	}
	return code
}
