// Command mcdb inspects the multiplicative-complexity database: it
// classifies Boolean functions up to affine equivalence and synthesizes
// AND-minimal circuits for their class representatives.
//
//	mcdb -classify e8 -n 3       # the majority function of the paper's example
//	mcdb -classes 4              # enumerate all 4-variable affine classes
//	mcdb -selftest
//
// Exit codes: 0 success, 1 I/O or selftest failure, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/mcdb"
	"repro/internal/tt"
)

const (
	exitOK    = 0
	exitFail  = 1
	exitUsage = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mcdb", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		classify = fs.String("classify", "", "hex truth table to classify and synthesize")
		nVars    = fs.Int("n", 0, "variable count for -classify (inferred from digits when 0)")
		classes  = fs.Int("classes", 0, "enumerate all affine classes of n ≤ 4 variables")
		selftest = fs.Bool("selftest", false, "verify class counts for n ≤ 4")
		savePath = fs.String("save", "", "persist synthesized entries to this file afterwards")
		loadPath = fs.String("load", "", "preload a previously saved database")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "mcdb: unexpected arguments: %v\n", fs.Args())
		return exitUsage
	}
	// Validate ranges at the boundary so library panics never surface as
	// crashes of the tool.
	switch {
	case *nVars < 0 || *nVars > tt.MaxVars:
		fmt.Fprintf(stderr, "mcdb: -n must be in 0..%d, got %d\n", tt.MaxVars, *nVars)
		return exitUsage
	case *classes < 0:
		fmt.Fprintf(stderr, "mcdb: -classes must not be negative, got %d\n", *classes)
		return exitUsage
	case *classes > 4:
		fmt.Fprintf(stderr, "mcdb: exhaustive enumeration supports n ≤ 4, got %d\n", *classes)
		return exitUsage
	}

	newDB := func() (*mcdb.DB, error) {
		db := mcdb.New(mcdb.Options{})
		if *loadPath != "" {
			f, err := os.Open(*loadPath)
			if err != nil {
				return nil, err
			}
			n, err := db.Load(f)
			f.Close()
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(stderr, "loaded %d entries from %s\n", n, *loadPath)
		}
		return db, nil
	}
	saveDB := func(db *mcdb.DB) error {
		if *savePath == "" {
			return nil
		}
		f, err := os.Create(*savePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := db.Save(f); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "saved %d entries to %s\n", db.NumEntries(), *savePath)
		return nil
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "mcdb:", err)
		return exitFail
	}

	switch {
	case *classify != "":
		n := *nVars
		if n == 0 {
			for (1<<uint(n))/4 < len(*classify) {
				n++
			}
		}
		f, err := tt.Parse(*classify, n)
		if err != nil {
			fmt.Fprintln(stderr, "mcdb:", err)
			return exitUsage
		}
		db, err := newDB()
		if err != nil {
			return fail(err)
		}
		entry, res := db.Lookup(f)
		fmt.Fprintf(stdout, "function        %s (%d vars)\n", f, n)
		fmt.Fprintf(stdout, "representative  %s  complete=%v steps=%d\n", res.Repr, res.Complete, res.Steps)
		fmt.Fprintf(stdout, "MC              %d AND gates (proven minimal: %v)\n", entry.MC(), entry.Exact)
		fmt.Fprintf(stdout, "XOR cost        %d (circuit) + %d (affine transform)\n", entry.XorCost(), res.Tr.XorCost())
		fmt.Fprintf(stdout, "SLP steps       %v\n", entry.Steps)
		fmt.Fprintf(stdout, "output mask     %b\n", entry.Out)
		if err := saveDB(db); err != nil {
			return fail(err)
		}
		return exitOK

	case *classes > 0:
		db, err := newDB()
		if err != nil {
			return fail(err)
		}
		reprs := map[tt.T]int{}
		order := []tt.T{}
		for bits := uint64(0); bits < 1<<(1<<uint(*classes)); bits++ {
			res := db.Classify(tt.New(bits, *classes))
			if _, ok := reprs[res.Repr]; !ok {
				order = append(order, res.Repr)
			}
			reprs[res.Repr]++
		}
		fmt.Fprintf(stdout, "%d affine classes of %d-variable functions:\n", len(reprs), *classes)
		for _, r := range order {
			e := db.EntryFor(r)
			fmt.Fprintf(stdout, "  repr %-6s size %6d  MC %d (exact=%v)\n", r, reprs[r], e.MC(), e.Exact)
		}
		if err := saveDB(db); err != nil {
			return fail(err)
		}
		return exitOK

	case *selftest:
		want := []int{1, 1, 2, 3, 8}
		ok := true
		for n := 1; n <= 4; n++ {
			db := mcdb.New(mcdb.Options{})
			reprs := map[tt.T]bool{}
			for bits := uint64(0); bits < 1<<(1<<uint(n)); bits++ {
				f := tt.New(bits, n)
				res := db.Classify(f)
				reprs[res.Repr] = true
				if got := res.Tr.Apply(res.Repr); got != f {
					fmt.Fprintf(stdout, "FAIL: n=%d f=%s reconstruction\n", n, f)
					return exitFail
				}
			}
			status := "ok"
			if len(reprs) != want[n] {
				status = fmt.Sprintf("FAIL (want %d)", want[n])
				ok = false
			}
			fmt.Fprintf(stdout, "n=%d: %6d classes %s\n", n, len(reprs), status)
		}
		if !ok {
			return exitFail
		}
		return exitOK

	default:
		fs.Usage()
		return exitUsage
	}
}
