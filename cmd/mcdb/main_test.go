package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mcdb"
	"repro/internal/tt"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestClassifyMajority(t *testing.T) {
	code, out, errOut := runCapture(t, "-classify", "e8", "-n", "3")
	if code != exitOK {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "MC              1") {
		t.Fatalf("majority should report MC 1:\n%s", out)
	}
}

func TestClassEnumeration(t *testing.T) {
	code, out, errOut := runCapture(t, "-classes", "3")
	if code != exitOK {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "3 affine classes") {
		t.Fatalf("want 3 affine classes of 3-variable functions:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-n", "7", "-classify", "ff"},  // n above MaxVars
		{"-n", "-1", "-classify", "ff"}, // negative n
		{"-classes", "5"},               // enumeration beyond n=4
		{"-classes", "-2"},              // negative
		{"-classify", "zz"},             // unparsable truth table
		{"-nonsense"},                   // unknown flag
		{"positional"},                  // unexpected argument
		{},                              // no mode selected
	}
	for _, args := range cases {
		if code, _, _ := runCapture(t, args...); code != exitUsage {
			t.Errorf("args %v: exit %d, want %d", args, code, exitUsage)
		}
	}
}

func TestLoadMissingFileFails(t *testing.T) {
	code, _, errOut := runCapture(t, "-classify", "e8", "-n", "3",
		"-load", filepath.Join(t.TempDir(), "does-not-exist.db"))
	if code != exitFail {
		t.Fatalf("exit %d, want %d (stderr: %s)", code, exitFail, errOut)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mc.db")
	if code, _, errOut := runCapture(t, "-classify", "e8", "-n", "3", "-save", path); code != exitOK {
		t.Fatalf("save run: exit %d, stderr: %s", code, errOut)
	}
	code, out, errOut := runCapture(t, "-classify", "e8", "-n", "3", "-load", path)
	if code != exitOK {
		t.Fatalf("load run: exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "loaded") {
		t.Fatalf("load not reported: %s", errOut)
	}
	if !strings.Contains(out, "MC              1") {
		t.Fatalf("loaded database changed the answer:\n%s", out)
	}
}

func TestSelftest(t *testing.T) {
	if testing.Short() {
		t.Skip("selftest enumerates all functions up to n=4")
	}
	code, out, _ := runCapture(t, "-selftest")
	if code != exitOK {
		t.Fatalf("selftest exit %d:\n%s", code, out)
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("selftest reported failure:\n%s", out)
	}
}

// TestVerifySnapshot drives `mcdb verify` across the three exit codes: a
// clean snapshot, one with a flipped byte (quarantinable), and garbage
// (unreadable).
func TestVerifySnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mc.snap")
	if code, _, errOut := runCapture(t, "-classes", "3", "-save", path); code != exitOK {
		t.Fatalf("save run: exit %d, stderr: %s", code, errOut)
	}

	code, out, errOut := runCapture(t, "verify", "-snapshot", path)
	if code != verifyClean {
		t.Fatalf("clean snapshot: exit %d, want %d\n%s%s", code, verifyClean, out, errOut)
	}
	if !strings.Contains(out, "ok") {
		t.Fatalf("clean snapshot report:\n%s", out)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-3] ^= 0x20
	damaged := filepath.Join(dir, "damaged.snap")
	if err := os.WriteFile(damaged, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ = runCapture(t, "verify", "-snapshot", damaged)
	if code != verifyDamaged {
		t.Fatalf("damaged snapshot: exit %d, want %d\n%s", code, verifyDamaged, out)
	}
	if !strings.Contains(out, "DAMAGED") {
		t.Fatalf("damaged snapshot report:\n%s", out)
	}

	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("not a database"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ = runCapture(t, "verify", "-snapshot", junk); code != verifyUnreadable {
		t.Fatalf("junk file: exit %d, want %d", code, verifyUnreadable)
	}
}

func TestVerifyStoreDir(t *testing.T) {
	dir := t.TempDir()
	db := mcdb.New(mcdb.Options{})
	store, _, err := mcdb.OpenStore(dir, db)
	if err != nil {
		t.Fatal(err)
	}
	db.Lookup(tt.New(0xe8, 3))
	db.Lookup(tt.New(0x96, 3))
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	code, out, errOut := runCapture(t, "verify", "-dir", dir)
	if code != verifyClean {
		t.Fatalf("clean store: exit %d\n%s%s", code, out, errOut)
	}

	if code, _, _ := runCapture(t, "verify", "-dir", filepath.Join(dir, "nope")); code != verifyUnreadable {
		t.Fatalf("missing dir: exit %d, want %d", code, verifyUnreadable)
	}
	if code, _, _ := runCapture(t, "verify"); code != verifyUnreadable {
		t.Fatalf("no input: exit %d, want %d", code, verifyUnreadable)
	}
}

// TestRefineFlagValidation drives `mcdb refine` through its usage errors:
// every row must exit with the unreadable/usage code without touching disk.
func TestRefineFlagValidation(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"refine"}, // no input selected
		{"refine", "-dir", dir, "-snapshot", "x"},     // both inputs
		{"refine", "-snapshot", "x", "-budget", "-1"}, // negative budget
		{"refine", "-snapshot", "x", "-worst", "-2"},  // negative worst-N
		{"refine", "-nonsense"},                       // unknown flag
		{"refine", "-snapshot", "x", "positional"},    // unexpected argument
	}
	for _, args := range cases {
		if code, _, _ := runCapture(t, args...); code != verifyUnreadable {
			t.Errorf("args %v: exit %d, want %d", args, code, verifyUnreadable)
		}
	}
	// A snapshot path that cannot be read is unreadable, not damage.
	missing := filepath.Join(dir, "does-not-exist.snap")
	if code, _, _ := runCapture(t, "refine", "-snapshot", missing); code != verifyUnreadable {
		t.Errorf("missing snapshot: want exit %d", verifyUnreadable)
	}
	if code, _, _ := runCapture(t, "refine", "-dir", filepath.Join(dir, "nope", "deeper")); code != verifyUnreadable {
		t.Errorf("uncreatable dir: want exit %d", verifyUnreadable)
	}
}

// TestRefineSnapshotRoundTrip refines a saved snapshot in place and checks
// the result still verifies clean and that a second pass finds nothing left
// to do (the proofs were persisted).
func TestRefineSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mc.snap")
	if code, _, errOut := runCapture(t, "-classes", "4", "-save", path); code != exitOK {
		t.Fatalf("save run: exit %d, stderr: %s", code, errOut)
	}

	code, out, errOut := runCapture(t, "refine", "-snapshot", path, "-reprove")
	if code != verifyClean {
		t.Fatalf("refine: exit %d\n%s%s", code, out, errOut)
	}
	if !strings.Contains(out, "0 rejected") || !strings.Contains(out, "saved") {
		t.Fatalf("refine report:\n%s", out)
	}

	if code, out, _ := runCapture(t, "verify", "-snapshot", path); code != verifyClean {
		t.Fatalf("refined snapshot does not verify: exit %d\n%s", code, out)
	}

	// The proven-optimal stamps were written back, so without -reprove the
	// second pass has no candidates left.
	code, out, _ = runCapture(t, "refine", "-snapshot", path)
	if code != verifyClean || !strings.Contains(out, "0 candidates") {
		t.Fatalf("second pass not a no-op (exit %d):\n%s", code, out)
	}
}

// TestRefineStoreDir refines a durable store: improvements must flow through
// the journal and the checkpoint, and the store must verify clean afterwards.
func TestRefineStoreDir(t *testing.T) {
	dir := t.TempDir()
	db := mcdb.New(mcdb.Options{})
	store, _, err := mcdb.OpenStore(dir, db)
	if err != nil {
		t.Fatal(err)
	}
	db.Lookup(tt.New(0xe8, 3))
	db.Lookup(tt.New(0x6996, 4))
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	code, out, errOut := runCapture(t, "refine", "-dir", dir, "-reprove")
	if code != verifyClean {
		t.Fatalf("refine store: exit %d\n%s%s", code, out, errOut)
	}
	if !strings.Contains(out, "checkpointed") {
		t.Fatalf("refine store report:\n%s", out)
	}
	if code, out, _ := runCapture(t, "verify", "-dir", dir); code != verifyClean {
		t.Fatalf("refined store does not verify: exit %d\n%s", code, out)
	}
}
